#include "fi/tvm_target.hpp"

#include <cassert>

#include "util/bitops.hpp"

namespace earl::fi {

TvmTarget::TvmTarget(const tvm::AssembledProgram& program,
                     tvm::CacheConfig cache_config)
    : machine_(cache_config),
      scan_(cache_config),
      entry_(program.entry) {
  assert(program.ok());
  const bool loaded = tvm::load_program(program, machine_.mem);
  assert(loaded);
  (void)loaded;
  machine_.reset(entry_);
}

void TvmTarget::reset() {
  if (profiling_) accumulate_cache_stats();
  machine_.reset(entry_);
  executed_ = 0;
  armed_.reset();
  injected_ = false;
}

void TvmTarget::accumulate_cache_stats() {
  const tvm::CacheStats& stats = machine_.cache.stats();
  profile_.cache_hits += stats.hits;
  profile_.cache_misses += stats.misses;
  profile_.cache_writebacks += stats.writebacks;
}

void TvmTarget::set_profiling(bool enabled) {
  profiling_ = enabled;
  machine_.cpu.set_exec_profile(enabled ? &exec_profile_ : nullptr);
}

obs::TargetProfile TvmTarget::profile() const {
  obs::TargetProfile out = profile_;
  out.instret_by_opcode = exec_profile_.opcode;
  if (profiling_) {
    // Fold in the current run's not-yet-accumulated cache stats.
    const tvm::CacheStats& stats = machine_.cache.stats();
    out.cache_hits += stats.hits;
    out.cache_misses += stats.misses;
    out.cache_writebacks += stats.writebacks;
  }
  return out;
}

void TvmTarget::arm(const Fault& fault) {
  armed_ = fault;
  injected_ = false;
}

void TvmTarget::apply_fault_bits() {
  for (const std::size_t bit : armed_->bits) {
    switch (armed_->kind) {
      case FaultKind::kSingleBitFlip:
      case FaultKind::kMultiBitFlip:
        scan_.flip_bit(machine_, bit);
        break;
      case FaultKind::kStuckAt0:
        scan_.write_bit(machine_, bit, false);
        break;
      case FaultKind::kStuckAt1:
        scan_.write_bit(machine_, bit, true);
        break;
    }
  }
}

IterationOutcome TvmTarget::iterate(float reference, float measurement) {
  IterationOutcome outcome;

  // Marks the iteration as detected, recording the injection->detection
  // instruction distance and the raw EDM trigger for the profile.
  auto detect = [&](tvm::Edm edm) {
    outcome.detected = true;
    outcome.edm = edm;
    if (armed_ && injected_) {
      outcome.detection_distance = executed_ - armed_->time;
    }
    if (profiling_) {
      ++profile_.edm_raised[static_cast<std::size_t>(edm)];
    }
  };

  // Stuck-at faults are re-forced at every iteration boundary once injected
  // (scan-chain approximation of a permanent fault).
  if (armed_ && injected_ && is_stuck_at(armed_->kind)) apply_fault_bits();

  // Environment -> target I/O exchange.
  machine_.mem.write_raw(tvm::kIoInRef, util::float_to_bits(reference));
  machine_.mem.write_raw(tvm::kIoInMeas, util::float_to_bits(measurement));

  std::uint64_t remaining = iteration_budget_;
  while (remaining > 0) {
    std::uint64_t chunk = remaining;
    if (armed_ && !injected_ && armed_->time >= executed_) {
      const std::uint64_t until_fault = armed_->time - executed_;
      if (until_fault == 0) {
        apply_fault_bits();
        injected_ = true;
        continue;
      }
      chunk = std::min(chunk, until_fault);
    }
    const tvm::RunResult run = machine_.run(chunk);
    executed_ += run.executed;
    outcome.elapsed += run.executed;
    remaining -= std::min(remaining, run.executed);
    switch (run.kind) {
      case tvm::RunResult::Kind::kYield:
        outcome.output =
            util::bits_to_float(machine_.mem.read_raw(tvm::kIoOutU));
        return outcome;
      case tvm::RunResult::Kind::kTrap:
        detect(run.edm);
        return outcome;
      case tvm::RunResult::Kind::kHalt:
        // HALT is privileged and never executes fault-free; a corrupted
        // mode bit could reach it. The node stops — a detected condition.
        detect(tvm::Edm::kInstructionError);
        return outcome;
      case tvm::RunResult::Kind::kBudgetExhausted:
        break;  // reached the injection point, or the watchdog budget
    }
  }
  detect(tvm::Edm::kWatchdog);
  return outcome;
}

std::uint64_t TvmTarget::fault_space_bits() const { return scan_.total_bits(); }

std::uint64_t TvmTarget::register_partition_bits() const {
  return scan_.register_bits();
}

std::vector<std::uint64_t> TvmTarget::observable_state() const {
  // Scan-chain state plus the observable data and stack RAM: GOOFI logs
  // "the contents of all the locations in the target system that are
  // observable".
  std::vector<std::uint64_t> state = scan_.snapshot(machine_);
  state.reserve(state.size() +
                (tvm::kDataSize + tvm::kStackSize) / 8 + 1);
  std::uint64_t pending = 0;
  bool half = false;
  auto push_word = [&](std::uint32_t word) {
    if (!half) {
      pending = word;
      half = true;
    } else {
      state.push_back(pending | (static_cast<std::uint64_t>(word) << 32));
      half = false;
    }
  };
  for (std::uint32_t a = tvm::kDataBase; a < tvm::kDataBase + tvm::kDataSize;
       a += 4) {
    push_word(machine_.mem.read_raw(a));
  }
  for (std::uint32_t a = tvm::kStackBase; a < tvm::kStackTop; a += 4) {
    push_word(machine_.mem.read_raw(a));
  }
  if (half) state.push_back(pending);
  return state;
}

void TvmTarget::set_iteration_budget(std::uint64_t budget) {
  iteration_budget_ = budget;
}

std::optional<std::size_t> TvmTarget::cache_bit_of_address(
    std::uint32_t addr) const {
  if (!machine_.cache.probe(addr)) return std::nullopt;
  const unsigned line = (addr >> 4) & 7u;
  const unsigned word = (addr >> 2) & 3u;
  // Cache data elements are laid out first in the cache partition, in
  // (line, word) order, 32 bits each (see ScanChain's constructor).
  return scan_.register_bits() +
         static_cast<std::size_t>(line * tvm::kWordsPerLine + word) * 32;
}

}  // namespace earl::fi
