#include "fi/tvm_target.hpp"

#include <algorithm>
#include <cassert>
#include <string_view>

#include "obs/span.hpp"
#include "util/bitops.hpp"

namespace earl::fi {

namespace {

bool has_prefix(std::string_view name, std::string_view prefix) {
  return name.size() >= prefix.size() &&
         name.substr(0, prefix.size()) == prefix;
}

}  // namespace

// Checkpoint payload: the whole machine plus the retired-instruction count.
// A Machine copy is byte-faithful (memory, cache lines, CPU latches), so a
// restore is indistinguishable from having replayed the golden prefix.
struct TvmTarget::Snapshot final : TargetCheckpoint {
  tvm::Machine machine;
  std::uint64_t executed;

  Snapshot(const tvm::Machine& source, std::uint64_t executed_count)
      : machine(source), executed(executed_count) {
    // The copy carried the source CPU's observer pointers; a snapshot is
    // shared between workers and must not reference any live target.
    machine.cpu.set_trace_sink(nullptr);
    machine.cpu.set_exec_profile(nullptr);
  }
};

// Def/use trace sink: maps every operand each retired instruction reads or
// writes onto its scan-chain element and resolves the pending next-touch
// queries in one forward pass.  Touch sets are supersets of the true
// read/write sets (e.g. a memory access touches its whole direct-mapped
// cache line, ldw touches rd whether the load hits or traps) — supersets
// only split def/use classes finer, never merge distinct ones, so pruning
// stays exact.
struct TvmTarget::TouchRecorder final : tvm::TraceSink {
  static constexpr int kNoElement = -1;

  // Scan-element ordinal per machine unit (kNoElement when the element does
  // not exist, e.g. parity elements of a parity-disabled cache).
  std::array<int, tvm::kNumRegs> gpr;
  int pc = kNoElement;
  int ir = kNoElement;
  int mar = kNoElement;
  int mdr = kNoElement;
  int ex = kNoElement;
  int sig = kNoElement;
  int psr = kNoElement;
  std::array<std::array<int, tvm::kWordsPerLine>, tvm::kCacheLines> cache_data;
  std::array<std::array<int, tvm::kWordsPerLine>, tvm::kCacheLines>
      cache_parity;
  std::array<int, tvm::kCacheLines> cache_tag;
  std::array<int, tvm::kCacheLines> cache_valid;
  std::array<int, tvm::kCacheLines> cache_dirty;

  // Per-element pending queries sorted by injection time; `cursor` advances
  // as touches at increasing step indices answer every query whose time is
  // at or before the touch.
  struct Pending {
    std::vector<TouchQuery*> queries;
    std::size_t cursor = 0;
  };
  std::vector<Pending> pending;
  std::uint64_t now = 0;    // dynamic index of the instruction retiring
  std::uint64_t steps = 0;  // instructions seen so far

  TouchRecorder(const tvm::ScanChain& scan, std::vector<TouchQuery>* queries) {
    gpr.fill(kNoElement);
    for (auto& line : cache_data) line.fill(kNoElement);
    for (auto& line : cache_parity) line.fill(kNoElement);
    cache_tag.fill(kNoElement);
    cache_valid.fill(kNoElement);
    cache_dirty.fill(kNoElement);

    const std::vector<tvm::ScanElement>& elements = scan.elements();
    pending.resize(elements.size());
    for (std::size_t i = 0; i < elements.size(); ++i) {
      const tvm::ScanElement& e = elements[i];
      const int ord = static_cast<int>(i);
      switch (e.unit) {
        case tvm::ScanUnit::kGpr: gpr[e.index & 15u] = ord; break;
        case tvm::ScanUnit::kPc: pc = ord; break;
        case tvm::ScanUnit::kIr: ir = ord; break;
        case tvm::ScanUnit::kMar: mar = ord; break;
        case tvm::ScanUnit::kMdr: mdr = ord; break;
        case tvm::ScanUnit::kEx: ex = ord; break;
        case tvm::ScanUnit::kSig: sig = ord; break;
        case tvm::ScanUnit::kPsr: psr = ord; break;
        case tvm::ScanUnit::kCacheData:
          cache_data[e.index][e.subindex] = ord;
          break;
        case tvm::ScanUnit::kCacheTag: cache_tag[e.index] = ord; break;
        case tvm::ScanUnit::kCacheValid: cache_valid[e.index] = ord; break;
        case tvm::ScanUnit::kCacheDirty: cache_dirty[e.index] = ord; break;
        case tvm::ScanUnit::kCacheParity:
          cache_parity[e.index][e.subindex] = ord;
          break;
      }
    }

    // Route each query to its bit's element (elements are offset-sorted).
    for (TouchQuery& query : *queries) {
      const auto after = std::upper_bound(
          elements.begin(), elements.end(), query.bit,
          [](std::size_t bit, const tvm::ScanElement& e) {
            return bit < e.offset;
          });
      assert(after != elements.begin());
      const auto element = after - 1;
      assert(query.bit < element->offset + element->width);
      pending[static_cast<std::size_t>(element - elements.begin())]
          .queries.push_back(&query);
    }
    for (Pending& p : pending) {
      std::sort(p.queries.begin(), p.queries.end(),
                [](const TouchQuery* a, const TouchQuery* b) {
                  return a->time < b->time;
                });
    }
  }

  void touch(int element) {
    if (element < 0) return;
    Pending& p = pending[static_cast<std::size_t>(element)];
    while (p.cursor < p.queries.size() &&
           p.queries[p.cursor]->time <= now) {
      p.queries[p.cursor]->next_touch = now;
      ++p.cursor;
    }
  }

  void touch_gpr(unsigned reg) {
    if ((reg & 15u) != 0) touch(gpr[reg & 15u]);  // r0 is not a state element
  }

  void touch_line(unsigned line) {
    touch(cache_tag[line]);
    touch(cache_valid[line]);
    touch(cache_dirty[line]);
    for (unsigned word = 0; word < tvm::kWordsPerLine; ++word) {
      touch(cache_data[line][word]);
      touch(cache_parity[line][word]);
    }
  }

  void touch_all() {
    for (std::size_t i = 0; i < pending.size(); ++i) {
      touch(static_cast<int>(i));
    }
  }

  void on_step(const tvm::CpuState& before, std::uint32_t word) override {
    now = steps++;
    // Every retired instruction reads PC/IR (fetch + prefetch), updates the
    // control-flow signature, reads the PSR mode bit for the privilege
    // check, and has its next fetch bounds-checked against the stack
    // pointer (Cpu::finish), so those elements are touched unconditionally.
    touch(pc);
    touch(ir);
    touch(sig);
    touch(psr);
    touch_gpr(tvm::kRegSp);

    const auto decoded = tvm::decode(word);
    if (!decoded) {
      // Architecturally undefined word: never retires on a golden trace,
      // but stay sound if it ever does.
      touch_all();
      return;
    }
    const tvm::Instruction& ins = *decoded;
    using tvm::Opcode;
    switch (ins.op) {
      case Opcode::kNop:
      case Opcode::kHalt:
      case Opcode::kYield:
      case Opcode::kSig:
      case Opcode::kTrap:
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDivs:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kSll:
      case Opcode::kSrl:
      case Opcode::kSra:
      case Opcode::kFadd:
      case Opcode::kFsub:
      case Opcode::kFmul:
      case Opcode::kFdiv:
        touch_gpr(ins.ra);
        touch_gpr(ins.rb);
        touch_gpr(ins.rd);
        touch(ex);
        break;
      case Opcode::kAddi:
      case Opcode::kOri:
      case Opcode::kAndi:
      case Opcode::kXori:
      case Opcode::kFneg:
      case Opcode::kFabs:
      case Opcode::kItof:
      case Opcode::kFtoi:
        touch_gpr(ins.ra);
        touch_gpr(ins.rd);
        touch(ex);
        break;
      case Opcode::kMovi:
      case Opcode::kMovhi:
        touch_gpr(ins.rd);
        touch(ex);
        break;
      case Opcode::kLdw:
      case Opcode::kStw: {
        touch_gpr(ins.ra);
        touch_gpr(ins.rd);  // ldw writes rd, stw reads it
        touch(mar);
        touch(mdr);
        const std::uint32_t addr =
            (ins.ra == 0 ? 0u : before.regs[ins.ra & 15u]) +
            static_cast<std::uint32_t>(ins.imm);
        if (!tvm::is_uncached(addr)) {
          touch_line((addr >> 4) & (tvm::kCacheLines - 1));
        }
        break;
      }
      case Opcode::kCmp:
      case Opcode::kFcmp:
        touch_gpr(ins.ra);
        touch_gpr(ins.rb);
        break;
      case Opcode::kCmpi:
        touch_gpr(ins.ra);
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBle:
      case Opcode::kBgt:
      case Opcode::kJmp:
        break;  // PSR/PC already touched above
      case Opcode::kJal:
        touch_gpr(tvm::kRegLr);
        break;
      case Opcode::kJr:
        touch_gpr(ins.ra);
        break;
    }
  }
};

TvmTarget::TvmTarget(const tvm::AssembledProgram& program,
                     tvm::CacheConfig cache_config)
    : machine_(cache_config),
      scan_(cache_config),
      entry_(program.entry) {
  assert(program.ok());
  const bool loaded = tvm::load_program(program, machine_.mem);
  assert(loaded);
  (void)loaded;

  // Resolve detail-mode anchors from the program's symbols.  The emitter
  // brackets every assertion bad path between a `state_bad_*`/`out_bad_*`
  // label and the next `state_done_*`/`out_done_*` label in address order
  // (the label numbers come from one shared counter, so only addresses
  // pair reliably).  Back-up symbols exist only in best-effort-recovery
  // builds, which is what distinguishes "assertion fired" from "recovery
  // ran".
  std::vector<std::uint32_t> bads;
  std::vector<std::uint32_t> dones;
  for (const auto& [name, addr] : program.symbols) {
    if (has_prefix(name, "state_bad_") || has_prefix(name, "out_bad_")) {
      bads.push_back(addr);
    } else if (has_prefix(name, "state_done_") ||
               has_prefix(name, "out_done_")) {
      dones.push_back(addr);
    } else if (has_prefix(name, "state") && name.find("_old") != std::string::npos) {
      recovery_available_ = true;
    } else if (has_prefix(name, "out") && name.find("_old") != std::string::npos) {
      recovery_available_ = true;
    }
  }
  std::sort(dones.begin(), dones.end());
  for (const std::uint32_t bad : bads) {
    const auto done = std::upper_bound(dones.begin(), dones.end(), bad);
    if (done != dones.end()) detail_regions_.emplace_back(bad, *done);
  }
  if (const auto state0 = program.symbols.find("state0");
      state0 != program.symbols.end()) {
    state_addr_ = state0->second;
  }

  machine_.reset(entry_);
}

TvmTarget::~TvmTarget() = default;

std::shared_ptr<const TargetCheckpoint> TvmTarget::capture_checkpoint() const {
  return std::make_shared<Snapshot>(machine_, executed_);
}

void TvmTarget::restore_checkpoint(const TargetCheckpoint& checkpoint) {
  // The amortized replacement for reset(): nests inside the runner's
  // checkpoint_restore span the way reset() nests inside setup.
  const obs::ScopedSpan span(span_track_, obs::SpanPhase::kTargetReset);
  const auto& snap = static_cast<const Snapshot&>(checkpoint);
  // Same bookkeeping as reset(): fold the outgoing run's cache stats into
  // the profile before the machine is replaced.
  if (profiling_) accumulate_cache_stats();
  machine_ = snap.machine;
  // The snapshot carries the golden prefix's cache counters; drop them so
  // the profile counts only work actually executed (the skipped prefix is
  // exactly the cost checkpointing removes).
  machine_.cache.clear_stats();
  // Machine assignment copied the snapshot's (null) observer pointers;
  // re-attach this target's hooks.
  machine_.cpu.set_exec_profile(profiling_ ? &exec_profile_ : nullptr);
  machine_.cpu.set_trace_sink(detail_sink());
  executed_ = snap.executed;
  armed_.reset();
  injected_ = false;
}

bool TvmTarget::matches_checkpoint(const TargetCheckpoint& checkpoint) const {
  // Only a spent transient fault leaves future execution state-determined:
  // a pending injection would fire later, and a stuck-at keeps re-forcing
  // its bits every iteration, so neither may claim convergence even from a
  // bit-identical machine.
  if (!armed_ || !injected_ || is_stuck_at(armed_->kind)) return false;
  const auto& snap = static_cast<const Snapshot&>(checkpoint);
  return machine_.cpu.state_equals(snap.machine.cpu) &&
         machine_.cache.state_equals(snap.machine.cache) &&
         machine_.mem.state_equals(snap.machine.mem);
}

bool TvmTarget::begin_touch_recording(std::vector<TouchQuery>* queries) {
  if (queries == nullptr) return false;
  recorder_ = std::make_unique<TouchRecorder>(scan_, queries);
  machine_.cpu.set_trace_sink(recorder_.get());
  return true;
}

void TvmTarget::end_touch_recording() {
  recorder_.reset();
  machine_.cpu.set_trace_sink(detail_sink());
}

void TvmTarget::reset() {
  // "Reinitialising the target system and downloading the workload" — the
  // per-experiment cost checkpoint/restore injection would amortize, so it
  // gets its own span (nested inside the runner's setup span).
  const obs::ScopedSpan span(span_track_, obs::SpanPhase::kTargetReset);
  if (profiling_) accumulate_cache_stats();
  machine_.reset(entry_);
  executed_ = 0;
  armed_.reset();
  injected_ = false;
}

void TvmTarget::accumulate_cache_stats() {
  const tvm::CacheStats& stats = machine_.cache.stats();
  profile_.cache_hits += stats.hits;
  profile_.cache_misses += stats.misses;
  profile_.cache_writebacks += stats.writebacks;
}

void TvmTarget::set_profiling(bool enabled) {
  profiling_ = enabled;
  machine_.cpu.set_exec_profile(enabled ? &exec_profile_ : nullptr);
}

void TvmTarget::DetailProbe::on_step(const tvm::CpuState& before,
                                     std::uint32_t word) {
  (void)word;
  for (const auto& [bad, done] : owner->detail_regions_) {
    if (before.pc >= bad && before.pc < done) {
      owner->assertion_seen_ = true;
      return;
    }
  }
}

tvm::TraceSink* TvmTarget::detail_sink() {
  // The sink is purely observational (and Cpu::reset preserves it), so the
  // probe cannot perturb the run; skip it entirely for programs without
  // assertion regions.
  return detail_ && !detail_regions_.empty() ? &detail_probe_ : nullptr;
}

void TvmTarget::set_detail(bool enabled) {
  detail_ = enabled;
  detail_probe_.owner = this;
  machine_.cpu.set_trace_sink(detail_sink());
  assertion_seen_ = false;
}

std::uint32_t TvmTarget::peek_data_word(std::uint32_t addr) const {
  if (machine_.cache.probe(addr)) {
    const unsigned line = (addr >> 4) & 7u;
    const unsigned word = (addr >> 2) & 3u;
    return machine_.cache.data_word(line, word);
  }
  return machine_.mem.read_raw(addr);
}

IterationDetail TvmTarget::iteration_detail() const {
  IterationDetail detail;
  if (!detail_) return detail;
  if (state_addr_) {
    detail.state = util::bits_to_float(peek_data_word(*state_addr_));
  }
  detail.assertion_fired = assertion_seen_;
  detail.recovery_fired = assertion_seen_ && recovery_available_;
  return detail;
}

obs::TargetProfile TvmTarget::profile() const {
  obs::TargetProfile out = profile_;
  out.instret_by_opcode = exec_profile_.opcode;
  if (profiling_) {
    // Fold in the current run's not-yet-accumulated cache stats.
    const tvm::CacheStats& stats = machine_.cache.stats();
    out.cache_hits += stats.hits;
    out.cache_misses += stats.misses;
    out.cache_writebacks += stats.writebacks;
  }
  return out;
}

void TvmTarget::arm(const Fault& fault) {
  armed_ = fault;
  injected_ = false;
}

void TvmTarget::apply_fault_bits() {
  for (const std::size_t bit : armed_->bits) {
    switch (armed_->kind) {
      case FaultKind::kSingleBitFlip:
      case FaultKind::kMultiBitFlip:
        scan_.flip_bit(machine_, bit);
        break;
      case FaultKind::kStuckAt0:
        scan_.write_bit(machine_, bit, false);
        break;
      case FaultKind::kStuckAt1:
        scan_.write_bit(machine_, bit, true);
        break;
    }
  }
}

IterationOutcome TvmTarget::iterate(float reference, float measurement) {
  IterationOutcome outcome;
  assertion_seen_ = false;  // iteration_detail() reports the current call

  // Marks the iteration as detected, recording the injection->detection
  // instruction distance and the raw EDM trigger for the profile.
  auto detect = [&](tvm::Edm edm) {
    outcome.detected = true;
    outcome.edm = edm;
    if (armed_ && injected_) {
      outcome.detection_distance = executed_ - armed_->time;
    }
    if (profiling_) {
      ++profile_.edm_raised[static_cast<std::size_t>(edm)];
    }
  };

  // Stuck-at faults are re-forced at every iteration boundary once injected
  // (scan-chain approximation of a permanent fault).
  if (armed_ && injected_ && is_stuck_at(armed_->kind)) apply_fault_bits();

  // Environment -> target I/O exchange.
  machine_.mem.write_raw(tvm::kIoInRef, util::float_to_bits(reference));
  machine_.mem.write_raw(tvm::kIoInMeas, util::float_to_bits(measurement));

  std::uint64_t remaining = iteration_budget_;
  while (remaining > 0) {
    std::uint64_t chunk = remaining;
    if (armed_ && !injected_ && armed_->time >= executed_) {
      const std::uint64_t until_fault = armed_->time - executed_;
      if (until_fault == 0) {
        // First injection only; stuck-at re-forcing above stays untraced
        // (it runs every iteration and would swamp the trace).
        if (span_track_ != nullptr) {
          const std::int64_t inject_begin = span_track_->now();
          apply_fault_bits();
          span_track_->emit(obs::SpanPhase::kInject, inject_begin,
                            span_track_->now());
        } else {
          apply_fault_bits();
        }
        injected_ = true;
        continue;
      }
      chunk = std::min(chunk, until_fault);
    }
    const tvm::RunResult run = machine_.run(chunk);
    executed_ += run.executed;
    outcome.elapsed += run.executed;
    remaining -= std::min(remaining, run.executed);
    switch (run.kind) {
      case tvm::RunResult::Kind::kYield:
        outcome.output =
            util::bits_to_float(machine_.mem.read_raw(tvm::kIoOutU));
        return outcome;
      case tvm::RunResult::Kind::kTrap:
        detect(run.edm);
        return outcome;
      case tvm::RunResult::Kind::kHalt:
        // HALT is privileged and never executes fault-free; a corrupted
        // mode bit could reach it. The node stops — a detected condition.
        detect(tvm::Edm::kInstructionError);
        return outcome;
      case tvm::RunResult::Kind::kBudgetExhausted:
        break;  // reached the injection point, or the watchdog budget
    }
  }
  detect(tvm::Edm::kWatchdog);
  return outcome;
}

std::uint64_t TvmTarget::fault_space_bits() const { return scan_.total_bits(); }

std::uint64_t TvmTarget::register_partition_bits() const {
  return scan_.register_bits();
}

std::vector<std::uint64_t> TvmTarget::observable_state() const {
  // Scan-chain state plus the observable data and stack RAM: GOOFI logs
  // "the contents of all the locations in the target system that are
  // observable".
  std::vector<std::uint64_t> state = scan_.snapshot(machine_);
  state.reserve(state.size() +
                (tvm::kDataSize + tvm::kStackSize) / 8 + 1);
  std::uint64_t pending = 0;
  bool half = false;
  auto push_word = [&](std::uint32_t word) {
    if (!half) {
      pending = word;
      half = true;
    } else {
      state.push_back(pending | (static_cast<std::uint64_t>(word) << 32));
      half = false;
    }
  };
  for (std::uint32_t a = tvm::kDataBase; a < tvm::kDataBase + tvm::kDataSize;
       a += 4) {
    push_word(machine_.mem.read_raw(a));
  }
  for (std::uint32_t a = tvm::kStackBase; a < tvm::kStackTop; a += 4) {
    push_word(machine_.mem.read_raw(a));
  }
  if (half) state.push_back(pending);
  return state;
}

void TvmTarget::set_iteration_budget(std::uint64_t budget) {
  iteration_budget_ = budget;
}

std::optional<std::size_t> TvmTarget::cache_bit_of_address(
    std::uint32_t addr) const {
  if (!machine_.cache.probe(addr)) return std::nullopt;
  const unsigned line = (addr >> 4) & 7u;
  const unsigned word = (addr >> 2) & 3u;
  // Cache data elements are laid out first in the cache partition, in
  // (line, word) order, 32 bits each (see ScanChain's constructor).
  return scan_.register_bits() +
         static_cast<std::size_t>(line * tvm::kWordsPerLine + word) * 32;
}

}  // namespace earl::fi
