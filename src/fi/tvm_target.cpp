#include "fi/tvm_target.hpp"

#include <algorithm>
#include <cassert>
#include <string_view>

#include "obs/span.hpp"
#include "util/bitops.hpp"

namespace earl::fi {

namespace {

bool has_prefix(std::string_view name, std::string_view prefix) {
  return name.size() >= prefix.size() &&
         name.substr(0, prefix.size()) == prefix;
}

}  // namespace

TvmTarget::TvmTarget(const tvm::AssembledProgram& program,
                     tvm::CacheConfig cache_config)
    : machine_(cache_config),
      scan_(cache_config),
      entry_(program.entry) {
  assert(program.ok());
  const bool loaded = tvm::load_program(program, machine_.mem);
  assert(loaded);
  (void)loaded;

  // Resolve detail-mode anchors from the program's symbols.  The emitter
  // brackets every assertion bad path between a `state_bad_*`/`out_bad_*`
  // label and the next `state_done_*`/`out_done_*` label in address order
  // (the label numbers come from one shared counter, so only addresses
  // pair reliably).  Back-up symbols exist only in best-effort-recovery
  // builds, which is what distinguishes "assertion fired" from "recovery
  // ran".
  std::vector<std::uint32_t> bads;
  std::vector<std::uint32_t> dones;
  for (const auto& [name, addr] : program.symbols) {
    if (has_prefix(name, "state_bad_") || has_prefix(name, "out_bad_")) {
      bads.push_back(addr);
    } else if (has_prefix(name, "state_done_") ||
               has_prefix(name, "out_done_")) {
      dones.push_back(addr);
    } else if (has_prefix(name, "state") && name.find("_old") != std::string::npos) {
      recovery_available_ = true;
    } else if (has_prefix(name, "out") && name.find("_old") != std::string::npos) {
      recovery_available_ = true;
    }
  }
  std::sort(dones.begin(), dones.end());
  for (const std::uint32_t bad : bads) {
    const auto done = std::upper_bound(dones.begin(), dones.end(), bad);
    if (done != dones.end()) detail_regions_.emplace_back(bad, *done);
  }
  if (const auto state0 = program.symbols.find("state0");
      state0 != program.symbols.end()) {
    state_addr_ = state0->second;
  }

  machine_.reset(entry_);
}

void TvmTarget::reset() {
  // "Reinitialising the target system and downloading the workload" — the
  // per-experiment cost checkpoint/restore injection would amortize, so it
  // gets its own span (nested inside the runner's setup span).
  const obs::ScopedSpan span(span_track_, obs::SpanPhase::kTargetReset);
  if (profiling_) accumulate_cache_stats();
  machine_.reset(entry_);
  executed_ = 0;
  armed_.reset();
  injected_ = false;
}

void TvmTarget::accumulate_cache_stats() {
  const tvm::CacheStats& stats = machine_.cache.stats();
  profile_.cache_hits += stats.hits;
  profile_.cache_misses += stats.misses;
  profile_.cache_writebacks += stats.writebacks;
}

void TvmTarget::set_profiling(bool enabled) {
  profiling_ = enabled;
  machine_.cpu.set_exec_profile(enabled ? &exec_profile_ : nullptr);
}

void TvmTarget::DetailProbe::on_step(const tvm::CpuState& before,
                                     std::uint32_t word) {
  (void)word;
  for (const auto& [bad, done] : owner->detail_regions_) {
    if (before.pc >= bad && before.pc < done) {
      owner->assertion_seen_ = true;
      return;
    }
  }
}

void TvmTarget::set_detail(bool enabled) {
  detail_ = enabled;
  detail_probe_.owner = this;
  // The sink is purely observational (and Cpu::reset preserves it), so the
  // probe cannot perturb the run; skip it entirely for programs without
  // assertion regions.
  machine_.cpu.set_trace_sink(
      enabled && !detail_regions_.empty() ? &detail_probe_ : nullptr);
  assertion_seen_ = false;
}

std::uint32_t TvmTarget::peek_data_word(std::uint32_t addr) const {
  if (machine_.cache.probe(addr)) {
    const unsigned line = (addr >> 4) & 7u;
    const unsigned word = (addr >> 2) & 3u;
    return machine_.cache.data_word(line, word);
  }
  return machine_.mem.read_raw(addr);
}

IterationDetail TvmTarget::iteration_detail() const {
  IterationDetail detail;
  if (!detail_) return detail;
  if (state_addr_) {
    detail.state = util::bits_to_float(peek_data_word(*state_addr_));
  }
  detail.assertion_fired = assertion_seen_;
  detail.recovery_fired = assertion_seen_ && recovery_available_;
  return detail;
}

obs::TargetProfile TvmTarget::profile() const {
  obs::TargetProfile out = profile_;
  out.instret_by_opcode = exec_profile_.opcode;
  if (profiling_) {
    // Fold in the current run's not-yet-accumulated cache stats.
    const tvm::CacheStats& stats = machine_.cache.stats();
    out.cache_hits += stats.hits;
    out.cache_misses += stats.misses;
    out.cache_writebacks += stats.writebacks;
  }
  return out;
}

void TvmTarget::arm(const Fault& fault) {
  armed_ = fault;
  injected_ = false;
}

void TvmTarget::apply_fault_bits() {
  for (const std::size_t bit : armed_->bits) {
    switch (armed_->kind) {
      case FaultKind::kSingleBitFlip:
      case FaultKind::kMultiBitFlip:
        scan_.flip_bit(machine_, bit);
        break;
      case FaultKind::kStuckAt0:
        scan_.write_bit(machine_, bit, false);
        break;
      case FaultKind::kStuckAt1:
        scan_.write_bit(machine_, bit, true);
        break;
    }
  }
}

IterationOutcome TvmTarget::iterate(float reference, float measurement) {
  IterationOutcome outcome;
  assertion_seen_ = false;  // iteration_detail() reports the current call

  // Marks the iteration as detected, recording the injection->detection
  // instruction distance and the raw EDM trigger for the profile.
  auto detect = [&](tvm::Edm edm) {
    outcome.detected = true;
    outcome.edm = edm;
    if (armed_ && injected_) {
      outcome.detection_distance = executed_ - armed_->time;
    }
    if (profiling_) {
      ++profile_.edm_raised[static_cast<std::size_t>(edm)];
    }
  };

  // Stuck-at faults are re-forced at every iteration boundary once injected
  // (scan-chain approximation of a permanent fault).
  if (armed_ && injected_ && is_stuck_at(armed_->kind)) apply_fault_bits();

  // Environment -> target I/O exchange.
  machine_.mem.write_raw(tvm::kIoInRef, util::float_to_bits(reference));
  machine_.mem.write_raw(tvm::kIoInMeas, util::float_to_bits(measurement));

  std::uint64_t remaining = iteration_budget_;
  while (remaining > 0) {
    std::uint64_t chunk = remaining;
    if (armed_ && !injected_ && armed_->time >= executed_) {
      const std::uint64_t until_fault = armed_->time - executed_;
      if (until_fault == 0) {
        // First injection only; stuck-at re-forcing above stays untraced
        // (it runs every iteration and would swamp the trace).
        if (span_track_ != nullptr) {
          const std::int64_t inject_begin = span_track_->now();
          apply_fault_bits();
          span_track_->emit(obs::SpanPhase::kInject, inject_begin,
                            span_track_->now());
        } else {
          apply_fault_bits();
        }
        injected_ = true;
        continue;
      }
      chunk = std::min(chunk, until_fault);
    }
    const tvm::RunResult run = machine_.run(chunk);
    executed_ += run.executed;
    outcome.elapsed += run.executed;
    remaining -= std::min(remaining, run.executed);
    switch (run.kind) {
      case tvm::RunResult::Kind::kYield:
        outcome.output =
            util::bits_to_float(machine_.mem.read_raw(tvm::kIoOutU));
        return outcome;
      case tvm::RunResult::Kind::kTrap:
        detect(run.edm);
        return outcome;
      case tvm::RunResult::Kind::kHalt:
        // HALT is privileged and never executes fault-free; a corrupted
        // mode bit could reach it. The node stops — a detected condition.
        detect(tvm::Edm::kInstructionError);
        return outcome;
      case tvm::RunResult::Kind::kBudgetExhausted:
        break;  // reached the injection point, or the watchdog budget
    }
  }
  detect(tvm::Edm::kWatchdog);
  return outcome;
}

std::uint64_t TvmTarget::fault_space_bits() const { return scan_.total_bits(); }

std::uint64_t TvmTarget::register_partition_bits() const {
  return scan_.register_bits();
}

std::vector<std::uint64_t> TvmTarget::observable_state() const {
  // Scan-chain state plus the observable data and stack RAM: GOOFI logs
  // "the contents of all the locations in the target system that are
  // observable".
  std::vector<std::uint64_t> state = scan_.snapshot(machine_);
  state.reserve(state.size() +
                (tvm::kDataSize + tvm::kStackSize) / 8 + 1);
  std::uint64_t pending = 0;
  bool half = false;
  auto push_word = [&](std::uint32_t word) {
    if (!half) {
      pending = word;
      half = true;
    } else {
      state.push_back(pending | (static_cast<std::uint64_t>(word) << 32));
      half = false;
    }
  };
  for (std::uint32_t a = tvm::kDataBase; a < tvm::kDataBase + tvm::kDataSize;
       a += 4) {
    push_word(machine_.mem.read_raw(a));
  }
  for (std::uint32_t a = tvm::kStackBase; a < tvm::kStackTop; a += 4) {
    push_word(machine_.mem.read_raw(a));
  }
  if (half) state.push_back(pending);
  return state;
}

void TvmTarget::set_iteration_budget(std::uint64_t budget) {
  iteration_budget_ = budget;
}

std::optional<std::size_t> TvmTarget::cache_bit_of_address(
    std::uint32_t addr) const {
  if (!machine_.cache.probe(addr)) return std::nullopt;
  const unsigned line = (addr >> 4) & 7u;
  const unsigned word = (addr >> 2) & 3u;
  // Cache data elements are laid out first in the cache partition, in
  // (line, word) order, 32 bits each (see ScanChain's constructor).
  return scan_.register_bits() +
         static_cast<std::size_t>(line * tvm::kWordsPerLine + word) * 32;
}

}  // namespace earl::fi
