// Fault models.
//
// The paper's model is the single bit-flip in a CPU state element — the
// standard model for transients caused by particle strikes (heavy ions,
// alpha particles, high-energy neutrons).  The campaign machinery is
// parameterized over the model so multi-bit upsets (increasingly relevant
// for dense geometries) and stuck-at faults can be studied as extensions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace earl::fi {

enum class FaultKind : std::uint8_t {
  kSingleBitFlip,
  kMultiBitFlip,  // `multiplicity` adjacent-independent bits flipped at once
  kStuckAt0,      // location forced to 0 at injection and re-forced at every
  kStuckAt1,      //   iteration boundary until the run ends (approximation
                  //   of a permanent fault at scan-chain granularity)
};

/// Number of FaultKind values; bounds-checks for persisted integer kinds.
inline constexpr std::size_t kFaultKindCount = 4;

struct FaultSpec {
  FaultKind kind = FaultKind::kSingleBitFlip;
  unsigned multiplicity = 1;  // used by kMultiBitFlip
};

/// A concrete fault instance: which scan-chain bits, and when.  `time` is a
/// dynamic-instruction index for SCIFI targets and an iteration index for
/// SWIFI targets (both uniformly sampled over the golden run, per the
/// paper's Section 3.3.2).
struct Fault {
  FaultKind kind = FaultKind::kSingleBitFlip;
  std::vector<std::size_t> bits;
  std::uint64_t time = 0;

  std::string to_string() const;
};

/// Draws a fault per `spec`, uniform over `location_bits` locations
/// (restricted by the caller to a partition when needed) and uniform over
/// `time_space` points in time.
Fault sample_fault(const FaultSpec& spec, std::uint64_t location_lo,
                   std::uint64_t location_hi, std::uint64_t time_space,
                   util::Rng& rng);

constexpr bool is_stuck_at(FaultKind kind) {
  return kind == FaultKind::kStuckAt0 || kind == FaultKind::kStuckAt1;
}

}  // namespace earl::fi
