// Def/use fault-space pruning (DETOx-style liveness collapsing).
//
// Two sampled faults that flip the same scan-chain bits at times t1 < t2
// are provably equivalent when no instruction reads OR writes any of those
// bits in [t1, t2): execution in that window is byte-identical to the
// golden run either way (nothing observes the flips), so by t2 both runs
// are in the same state — golden-with-bits-flipped — and everything
// downstream (detection, detection instruction, outputs, final state,
// classification) coincides.  Grouping by "per-bit next touch at or after
// the injection time" captures exactly that: equal next-touch vectors mean
// an untouched shared window.  Bits never touched again collapse into one
// class per bit set too — both runs end as golden-plus-flip, a latent
// fault either way.
//
// The campaign runs one representative per class (the lowest-index member,
// so claims in index order always execute it first) and synthesizes the
// other members' rows from the representative's: same outcome, EDM, end
// iteration and deviation stats; detection distance shifted by the
// injection-time difference (same absolute detection instruction).  The
// synthesized rows are bit-identical to brute-force runs — the headline
// test compares the two ResultDatabases byte for byte.
//
// Soundness of over-approximation: targets may report touch supersets
// (e.g. whole-cache-line granularity for a data-cache access).  Extra
// touches only split classes finer — never merge faults that differ — so
// pruning stays exact, just less aggressive.  Stuck-at faults are excluded
// by the runner (re-forcing the bits each iteration breaks the untouched-
// window argument), as is detail mode (members never execute, so their
// per-iteration records cannot be observed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fi/fault_model.hpp"
#include "fi/target.hpp"

namespace earl::fi {

/// The collapse of a fault list into def/use equivalence classes.
struct PrunePlan {
  /// rep[i] is the index of fault i's class representative (the lowest
  /// class index), rep[i] == i for representatives.  Empty when pruning is
  /// inactive; indices past the end (extensions sampled after the plan was
  /// built) are their own representatives.
  std::vector<std::size_t> rep;
  /// untouched[i] != 0 when every bit of fault i is never read or written
  /// at or after its injection time (all next-touches are kNoNextTouch).
  /// Such a fault is provably latent: execution stays byte-identical to the
  /// golden run forever, so its row can be synthesized from the golden
  /// outputs with zero execution.  Parallel to `rep`; empty when inactive.
  std::vector<std::uint8_t> untouched;
  std::size_t classes = 0;      // distinct representatives
  std::size_t synthesized = 0;  // members whose rows are synthesized

  bool active() const { return !rep.empty(); }
  std::size_t rep_of(std::size_t index) const {
    return index < rep.size() ? rep[index] : index;
  }
  bool is_member(std::size_t index) const { return rep_of(index) != index; }
  bool is_untouched(std::size_t index) const {
    return index < untouched.size() && untouched[index] != 0;
  }
};

/// One TouchQuery per (bit, injection time) cell of the fault list, in
/// fault order (fault i's bits contribute queries
/// [sum of bits before i, +bits[i].size())).  Resolve with
/// Target::begin_touch_recording + one golden replay, then feed back into
/// build_prune_plan.
std::vector<TouchQuery> make_touch_queries(const std::vector<Fault>& faults);

/// Groups faults whose (bit set, per-bit next touch) signatures match.
/// `queries` must be the resolved output of make_touch_queries(faults).
/// Deterministic: depends only on the fault list and the golden trace.
PrunePlan build_prune_plan(const std::vector<Fault>& faults,
                           const std::vector<TouchQuery>& queries);

}  // namespace earl::fi
