#include "fi/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

#include "util/rng.hpp"

namespace earl::fi {

GoldenRun CampaignRunner::run_golden(Target& target) const {
  GoldenRun golden;
  golden.outputs.reserve(config_.iterations);
  target.reset();
  // An unconstrained budget for the reference run; the real watchdog value
  // derives from what this run measures.
  target.set_iteration_budget(std::uint64_t{1} << 32);

  plant::Engine engine(config_.engine);
  float y = static_cast<float>(engine.speed());
  for (std::size_t k = 0; k < config_.iterations; ++k) {
    const double t = plant::iteration_time(k);
    const float r = plant::reference_speed(t, config_.signals);
    const IterationOutcome step = target.iterate(r, y);
    assert(!step.detected && "golden run raised a detection");
    golden.outputs.push_back(step.output);
    golden.total_time += step.elapsed;
    golden.max_iteration_time = std::max(golden.max_iteration_time,
                                         step.elapsed);
    y = engine.step(step.output, plant::engine_load(t, config_.signals));
  }
  golden.final_state = target.observable_state();
  return golden;
}

std::vector<Fault> CampaignRunner::sample_faults(
    std::uint64_t fault_space_bits, std::uint64_t register_bits,
    std::uint64_t time_space) const {
  std::uint64_t location_lo = 0;
  std::uint64_t location_hi = fault_space_bits;
  switch (config_.filter) {
    case LocationFilter::kAll:
      break;
    case LocationFilter::kRegistersOnly:
      location_hi = register_bits;
      break;
    case LocationFilter::kCacheOnly:
      location_lo = register_bits;
      break;
  }
  util::Rng rng(config_.seed);
  std::vector<Fault> faults;
  faults.reserve(config_.experiments);
  for (std::size_t i = 0; i < config_.experiments; ++i) {
    faults.push_back(sample_fault(config_.fault, location_lo, location_hi,
                                  time_space, rng));
  }
  return faults;
}

ExperimentResult CampaignRunner::run_experiment(Target& target,
                                                const Fault& fault,
                                                std::uint64_t id,
                                                const GoldenRun& golden) const {
  ExperimentResult result;
  result.id = id;
  result.fault = fault;

  target.reset();
  target.set_iteration_budget(std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(golden.max_iteration_time) *
             config_.watchdog_factor)));
  target.arm(fault);

  plant::Engine engine(config_.engine);
  std::vector<float> outputs;
  outputs.reserve(config_.iterations);
  float y = static_cast<float>(engine.speed());
  for (std::size_t k = 0; k < config_.iterations; ++k) {
    const double t = plant::iteration_time(k);
    const float r = plant::reference_speed(t, config_.signals);
    const IterationOutcome step = target.iterate(r, y);
    if (step.detected) {
      result.outcome = analysis::Outcome::kDetected;
      result.edm = step.edm;
      result.end_iteration = k;
      return result;
    }
    outputs.push_back(step.output);
    y = engine.step(step.output, plant::engine_load(t, config_.signals));
  }
  result.end_iteration = config_.iterations;

  const bool state_identical = target.observable_state() == golden.final_state;
  const analysis::DeviationStats stats =
      analysis::deviation_stats(golden.outputs, outputs, config_.classify);
  result.outcome = analysis::classify_outputs(golden.outputs, outputs,
                                              state_identical,
                                              config_.classify);
  result.first_strong = stats.first_strong;
  result.strong_count = stats.strong_count;
  result.max_deviation = stats.max_deviation;
  return result;
}

std::vector<float> CampaignRunner::replay_outputs(Target& target,
                                                  const Fault& fault,
                                                  const GoldenRun& golden) const {
  target.reset();
  target.set_iteration_budget(std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(golden.max_iteration_time) *
             config_.watchdog_factor)));
  target.arm(fault);

  plant::Engine engine(config_.engine);
  std::vector<float> outputs;
  outputs.reserve(config_.iterations);
  float y = static_cast<float>(engine.speed());
  for (std::size_t k = 0; k < config_.iterations; ++k) {
    const double t = plant::iteration_time(k);
    const float r = plant::reference_speed(t, config_.signals);
    const IterationOutcome step = target.iterate(r, y);
    if (step.detected) break;
    outputs.push_back(step.output);
    y = engine.step(step.output, plant::engine_load(t, config_.signals));
  }
  return outputs;
}

CampaignResult CampaignRunner::run(const TargetFactory& factory) const {
  CampaignResult result;
  result.config = config_;

  const std::unique_ptr<Target> probe = factory();
  result.fault_space_bits = probe->fault_space_bits();
  result.register_partition_bits = probe->register_partition_bits();
  result.golden = run_golden(*probe);

  const std::vector<Fault> faults = sample_faults(
      result.fault_space_bits, result.register_partition_bits,
      result.golden.total_time);

  result.experiments.resize(faults.size());

  std::size_t workers = config_.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers = std::min(workers, faults.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < faults.size(); ++i) {
      result.experiments[i] =
          run_experiment(*probe, faults[i], i, result.golden);
      result.experiments[i].cache_location =
          faults[i].bits[0] >= result.register_partition_bits;
    }
    return result;
  }

  // Workers pull experiment indices from a shared counter; each owns a
  // private target so no synchronization beyond the counter is needed.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      const std::unique_ptr<Target> target =
          w == 0 ? nullptr : factory();
      Target& mine = w == 0 ? *probe : *target;
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= faults.size()) break;
        result.experiments[i] =
            run_experiment(mine, faults[i], i, result.golden);
        result.experiments[i].cache_location =
            faults[i].bits[0] >= result.register_partition_bits;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return result;
}

}  // namespace earl::fi
