#include "fi/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"

namespace earl::fi {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

struct CampaignRunner::IterationTap {
  obs::CampaignObserver* observer = nullptr;
  std::size_t worker = 0;
  std::uint64_t experiment = obs::kGoldenExperimentId;
  /// Fault-free outputs for the deviation field; null for the golden run.
  const std::vector<float>* golden_outputs = nullptr;
};

CampaignRunner::ClosedLoop CampaignRunner::run_closed_loop(
    Target& target, const Fault* fault, std::uint64_t iteration_budget,
    const IterationTap* tap, obs::SpanTrack* track) const {
  ClosedLoop loop;
  loop.outputs.reserve(config_.iterations);

  const std::int64_t setup_begin = track != nullptr ? track->now() : 0;
  target.reset();
  target.set_iteration_budget(iteration_budget);
  if (fault != nullptr) target.arm(*fault);
  std::int64_t run_begin = 0;
  if (track != nullptr) {
    run_begin = track->now();
    track->emit(obs::SpanPhase::kSetup, setup_begin, run_begin);
  }
  // Golden-replay vs post-inject attribution: the target injects inside
  // the iterate whose cumulative time units cross fault->time, so a
  // private accumulator (ClosedLoop::total_time excludes the detecting
  // iterate) finds the boundary with one compare per iteration — clock
  // reads happen only at the crossing and at the ends.
  const bool split = track != nullptr && fault != nullptr;
  std::uint64_t traced_time = 0;
  bool crossed = false;
  std::int64_t inject_ts = 0;
  const auto note_iteration = [&](std::uint64_t elapsed) {
    if (!split || crossed) return;
    traced_time += elapsed;
    if (traced_time > fault->time) {
      crossed = true;
      inject_ts = track->now();
      track->emit(obs::SpanPhase::kGoldenReplay, run_begin, inject_ts);
    }
  };
  const auto finish_run_span = [&] {
    if (!split) return;
    const std::int64_t end_ts = track->now();
    if (crossed) {
      track->emit(obs::SpanPhase::kPostInjectRun, inject_ts, end_ts);
    } else {
      // The whole run stayed on the golden prefix (injection time beyond
      // the executed window).
      track->emit(obs::SpanPhase::kGoldenReplay, run_begin, end_ts);
    }
  };

  plant::Engine engine(config_.engine);
  float y = static_cast<float>(engine.speed());
  for (std::size_t k = 0; k < config_.iterations; ++k) {
    const double t = plant::iteration_time(k);
    const float r = plant::reference_speed(t, config_.signals);
    const IterationOutcome step = target.iterate(r, y);
    note_iteration(step.elapsed);
    if (step.detected) {
      assert(fault != nullptr && "golden run raised a detection");
      loop.detected = true;
      loop.edm = step.edm;
      loop.detection_distance = step.detection_distance;
      loop.end_iteration = k;
      finish_run_span();
      return loop;
    }
    if (tap != nullptr) {
      obs::IterationRecord record;
      record.experiment = tap->experiment;
      record.iteration = static_cast<std::uint32_t>(k);
      record.reference = r;
      record.measurement = y;
      record.output = step.output;
      record.golden_output =
          tap->golden_outputs != nullptr && k < tap->golden_outputs->size()
              ? (*tap->golden_outputs)[k]
              : step.output;
      record.deviation = std::fabs(record.output - record.golden_output);
      const IterationDetail detail = target.iteration_detail();
      record.state = detail.state;
      record.assertion_fired = detail.assertion_fired;
      record.recovery_fired = detail.recovery_fired;
      record.elapsed = step.elapsed;
      tap->observer->on_iteration(tap->worker, record);
    }
    loop.outputs.push_back(step.output);
    loop.total_time += step.elapsed;
    loop.max_iteration_time = std::max(loop.max_iteration_time, step.elapsed);
    y = engine.step(step.output, plant::engine_load(t, config_.signals));
  }
  loop.end_iteration = config_.iterations;
  finish_run_span();
  return loop;
}

std::uint64_t CampaignRunner::watchdog_budget(const GoldenRun& golden) const {
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(golden.max_iteration_time) *
             config_.watchdog_factor));
}

GoldenRun CampaignRunner::run_golden(Target& target,
                                     obs::CampaignObserver* observer) const {
  IterationTap tap;
  const bool detail = observer != nullptr && observer->wants_iterations();
  if (detail) {
    target.set_detail(true);
    tap.observer = observer;
  }
  // An unconstrained budget for the reference run; the real watchdog value
  // derives from what this run measures.
  ClosedLoop loop = run_closed_loop(target, nullptr, std::uint64_t{1} << 32,
                                    detail ? &tap : nullptr);
  GoldenRun golden;
  golden.outputs = std::move(loop.outputs);
  golden.total_time = loop.total_time;
  golden.max_iteration_time = loop.max_iteration_time;
  golden.final_state = target.observable_state();
  return golden;
}

CampaignRunner::LocationBounds CampaignRunner::location_bounds(
    std::uint64_t fault_space_bits, std::uint64_t register_bits) const {
  LocationBounds bounds;
  bounds.hi = fault_space_bits;
  switch (config_.filter) {
    case LocationFilter::kAll:
      break;
    case LocationFilter::kRegistersOnly:
      bounds.hi = register_bits;
      break;
    case LocationFilter::kCacheOnly:
      bounds.lo = register_bits;
      break;
  }
  return bounds;
}

std::vector<Fault> CampaignRunner::sample_faults(
    std::uint64_t fault_space_bits, std::uint64_t register_bits,
    std::uint64_t time_space) const {
  const LocationBounds bounds =
      location_bounds(fault_space_bits, register_bits);
  util::Rng rng(config_.seed);
  std::vector<Fault> faults;
  faults.reserve(config_.experiments);
  for (std::size_t i = 0; i < config_.experiments; ++i) {
    faults.push_back(
        sample_fault(config_.fault, bounds.lo, bounds.hi, time_space, rng));
  }
  return faults;
}

ExperimentResult CampaignRunner::run_experiment(
    Target& target, const Fault& fault, std::uint64_t id,
    const GoldenRun& golden, std::uint64_t register_bits,
    obs::CampaignObserver* observer, std::size_t worker,
    obs::SpanTrack* track) const {
  ExperimentResult result;
  result.id = id;
  result.fault = fault;
  result.cache_location = fault.bits[0] >= register_bits;

  IterationTap tap;
  const bool detail = observer != nullptr && observer->wants_iterations();
  if (detail) {
    tap.observer = observer;
    tap.worker = worker;
    tap.experiment = id;
    tap.golden_outputs = &golden.outputs;
  }
  const ClosedLoop loop = run_closed_loop(target, &fault,
                                          watchdog_budget(golden),
                                          detail ? &tap : nullptr, track);
  result.end_iteration = loop.end_iteration;
  if (loop.detected) {
    result.outcome = analysis::Outcome::kDetected;
    result.edm = loop.edm;
    result.detection_distance = loop.detection_distance;
    return result;
  }

  const std::int64_t classify_begin = track != nullptr ? track->now() : 0;
  const bool state_identical = target.observable_state() == golden.final_state;
  const analysis::DeviationStats stats =
      analysis::deviation_stats(golden.outputs, loop.outputs,
                                config_.classify);
  result.outcome = analysis::classify_outputs(golden.outputs, loop.outputs,
                                              state_identical,
                                              config_.classify);
  result.first_strong = stats.first_strong;
  result.strong_count = stats.strong_count;
  result.max_deviation = stats.max_deviation;
  if (track != nullptr) {
    track->emit(obs::SpanPhase::kClassify, classify_begin, track->now());
  }
  // Propagation capture runs after classification on a prober-private
  // execution, so it cannot influence the outcome above.
  if (prober_ && analysis::is_value_failure(result.outcome)) {
    const obs::ScopedSpan probe_span(track, obs::SpanPhase::kProbe);
    result.propagation = prober_(fault);
  }
  return result;
}

std::vector<float> CampaignRunner::replay_outputs(Target& target,
                                                  const Fault& fault,
                                                  const GoldenRun& golden) const {
  return run_closed_loop(target, &fault, watchdog_budget(golden)).outputs;
}

CampaignResult CampaignRunner::run(const TargetFactory& factory,
                                   obs::CampaignObserver* observer) const {
  CampaignResult result;
  result.config = config_;

  // Campaign-level spans (golden run, fault sampling, the whole campaign)
  // live on their own track; per-experiment lifecycle spans go to
  // per-worker tracks created below.
  obs::SpanTrack* campaign_track =
      tracer_ != nullptr ? tracer_->track("campaign") : nullptr;
  const std::int64_t campaign_begin =
      campaign_track != nullptr ? campaign_track->now() : 0;

  const std::unique_ptr<Target> probe = factory();
  if (observer != nullptr) probe->set_profiling(true);
  result.fault_space_bits = probe->fault_space_bits();
  result.register_partition_bits = probe->register_partition_bits();

  std::size_t workers = config_.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers = std::min(workers, std::max<std::size_t>(1, config_.experiments));

  if (controller_ != nullptr) {
    controller_->bind_base_experiments(config_.experiments);
  }

  if (observer != nullptr) {
    obs::CampaignStartInfo info;
    info.fault_space_bits = result.fault_space_bits;
    info.register_partition_bits = result.register_partition_bits;
    info.workers = workers;
    observer->on_campaign_start(config_, info);
  }

  {
    const obs::ScopedSpan golden_span(campaign_track,
                                      obs::SpanPhase::kGoldenRun);
    result.golden = run_golden(*probe, observer);
  }
  if (observer != nullptr) observer->on_golden_done(result.golden);
  const bool detail = observer != nullptr && observer->wants_iterations();

  // Shared work queue.  The fault list can grow mid-campaign (controller
  // extend), so claims, result stores and growth all happen under one
  // mutex; experiments themselves run unlocked on worker-private targets.
  // The sampler persists across extensions: extending by M continues the
  // seed-derived stream exactly where the initial N left off, which is
  // what makes "run N, extend M" bit-identical to running N + M.
  struct WorkQueue {
    std::mutex mutex;
    std::vector<Fault> faults;
    std::vector<ExperimentResult> results;
    std::size_t next = 0;
    util::Rng rng;
    explicit WorkQueue(std::uint64_t seed) : rng(seed) {}
  };
  WorkQueue queue(config_.seed);
  const LocationBounds bounds = location_bounds(
      result.fault_space_bits, result.register_partition_bits);
  const std::uint64_t time_space = result.golden.total_time;

  {
    const obs::ScopedSpan sample_span(campaign_track,
                                      obs::SpanPhase::kSampleFaults);
    queue.faults.reserve(config_.experiments);
    for (std::size_t i = 0; i < config_.experiments; ++i) {
      queue.faults.push_back(sample_fault(config_.fault, bounds.lo, bounds.hi,
                                          time_space, queue.rng));
    }
    queue.results.resize(queue.faults.size());
  }

  std::vector<obs::SpanTrack*> worker_tracks(workers, nullptr);
  if (tracer_ != nullptr) {
    for (std::size_t w = 0; w < workers; ++w) {
      worker_tracks[w] = tracer_->track("worker " + std::to_string(w));
    }
  }

  // Hot-path self-observability: one sample per claim attempt covering
  // lock acquisition, pending extensions and the fault hand-off — the
  // series contention regressions show up in first.  Resolved once so the
  // claim path never touches the registry's name map.
  obs::Histogram* claim_latency = nullptr;
  if (metrics_ != nullptr) {
    metrics_->set_help("earl.claim_latency_ns",
                       "Experiment-claim latency (queue mutex + fault "
                       "sampling), nanoseconds.");
    claim_latency =
        &metrics_->histogram("earl.claim_latency_ns", obs::latency_ns_bounds());
  }

  // Claims the next experiment, applying any pending extension first.
  // Returns false when the queue is drained.  The extension notification
  // fires under the queue mutex so observers learn the new total strictly
  // before any on_experiment_done for an extended index.
  const auto claim = [&](std::size_t w, std::size_t& index,
                         Fault& fault) -> bool {
    const auto claim_start = std::chrono::steady_clock::now();
    const std::int64_t span_begin = tracer_ != nullptr ? tracer_->now() : 0;
    bool ok = false;
    {
      const std::lock_guard<std::mutex> lock(queue.mutex);
      if (controller_ != nullptr) {
        const std::size_t target_n = controller_->target_experiments();
        if (target_n > queue.faults.size()) {
          while (queue.faults.size() < target_n) {
            queue.faults.push_back(sample_fault(config_.fault, bounds.lo,
                                                bounds.hi, time_space,
                                                queue.rng));
          }
          queue.results.resize(queue.faults.size());
          if (observer != nullptr) {
            observer->on_campaign_extended(w, queue.faults.size());
          }
        }
      }
      if (queue.next < queue.faults.size()) {
        index = queue.next++;
        fault = queue.faults[index];
        ok = true;
      }
    }
    // Observed outside the queue mutex: Histogram::observe takes its own
    // lock, and serializing it under the claim lock would inflate the
    // very latency being measured.
    if (claim_latency != nullptr) {
      claim_latency->observe(static_cast<double>(elapsed_ns(claim_start)));
    }
    // The claim span is emitted post-hoc (the sampling decision needs the
    // claimed index); set_scope tags the experiment's subsequent spans.
    if (ok && tracer_ != nullptr && tracer_->sampled(index)) {
      obs::SpanTrack* track = worker_tracks[w];
      track->set_scope(index);
      track->emit(obs::SpanPhase::kClaim, span_begin, track->now(), index);
    }
    return ok;
  };

  // Raised by the worker that finds the queue empty; releases workers
  // parked above the soft cap, which would otherwise never observe the
  // drain and hang the join below.
  std::atomic<bool> drained{false};

  const auto worker_fn = [&](std::size_t w, Target& mine) {
    for (;;) {
      // Control checks precede the claim, so every claimed index is
      // completed: [0, next) is a contiguous, fully-run prefix across
      // pauses, worker-cap parks and drains alike.
      if (controller_ != nullptr &&
          !controller_->wait_until_runnable(w, &drained)) {
        break;
      }
      if (stop_requested()) break;
      std::size_t i = 0;
      Fault fault;
      if (!claim(w, i, fault)) {
        drained.store(true, std::memory_order_relaxed);
        if (controller_ != nullptr) controller_->wake_parked();
        break;
      }
      obs::SpanTrack* track = nullptr;
      if (tracer_ != nullptr) {
        track = tracer_->sampled(i) ? worker_tracks[w] : nullptr;
        // The target emits its nested spans (reset, inject) onto the same
        // track; detaching for unsampled experiments keeps them span-free.
        mine.set_span_track(track);
      }
      const auto started = std::chrono::steady_clock::now();
      ExperimentResult experiment =
          run_experiment(mine, fault, i, result.golden,
                         result.register_partition_bits, observer, w, track);
      const std::int64_t store_begin = track != nullptr ? track->now() : 0;
      if (observer != nullptr) {
        observer->on_experiment_done(w, experiment, elapsed_ns(started));
      }
      {
        const std::lock_guard<std::mutex> lock(queue.mutex);
        queue.results[i] = std::move(experiment);
      }
      if (track != nullptr) {
        track->emit(obs::SpanPhase::kStore, store_begin, track->now());
      }
    }
    if (observer != nullptr) observer->on_worker_profile(w, mine.profile());
  };

  if (workers <= 1) {
    worker_fn(0, *probe);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        const std::unique_ptr<Target> target = w == 0 ? nullptr : factory();
        Target& mine = w == 0 ? *probe : *target;
        if (observer != nullptr && w != 0) mine.set_profiling(true);
        if (detail && w != 0) mine.set_detail(true);
        worker_fn(w, mine);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  const std::size_t total = queue.faults.size();
  const std::size_t completed = std::min(queue.next, total);
  queue.results.resize(completed);
  result.experiments = std::move(queue.results);
  result.interrupted = completed < total;
  // Reflect live extensions so reports match a campaign configured this
  // large from the start.
  result.config.experiments = total;
  if (observer != nullptr) observer->on_campaign_end(result);
  if (campaign_track != nullptr) {
    campaign_track->emit(obs::SpanPhase::kCampaign, campaign_begin,
                         campaign_track->now());
  }
  return result;
}

}  // namespace earl::fi
