#include "fi/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "fi/defuse.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace earl::fi {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// A def/use class member's row, synthesized from its representative's.
/// Equivalence (see fi/defuse.hpp) makes every field coincide except the
/// identity ones and the detection distance: both runs detect at the same
/// absolute instruction, so the injection->detection distance shifts by
/// the injection-time difference.  The shift is provably non-negative —
/// detection happens at or after the bits' next touch, which is at or
/// after the member's injection time.
ExperimentResult synthesize_member(const ExperimentResult& rep,
                                   const Fault& rep_fault, const Fault& fault,
                                   std::uint64_t id) {
  ExperimentResult out = rep;
  out.id = id;
  out.fault = fault;
  out.weight = 1;
  if (out.outcome == analysis::Outcome::kDetected) {
    out.detection_distance = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(rep.detection_distance) +
        static_cast<std::int64_t>(rep_fault.time) -
        static_cast<std::int64_t>(fault.time));
  }
  // The propagation record is re-probed per fault by the caller.
  out.propagation.reset();
  return out;
}

/// The row of a fault whose every bit is never read or written again
/// (PrunePlan::is_untouched), synthesized with zero execution.  Such a run
/// is byte-identical to the golden run — nothing ever observes the flipped
/// bits — so it completes the full horizon with golden outputs, and its
/// final observable state differs from the golden state by exactly the
/// flipped bits (a bit-flip always toggles): a latent fault, field for
/// field what the brute-force run produces.  Only valid when the watchdog
/// budget admits the golden run's own iterations (the caller gates on
/// that), and never for stuck-at faults (excluded from pruning entirely).
ExperimentResult synthesize_latent(const Fault& fault, std::uint64_t id,
                                   const GoldenRun& golden,
                                   std::uint64_t register_bits,
                                   const CampaignConfig& config) {
  ExperimentResult out;
  out.id = id;
  out.fault = fault;
  out.cache_location = fault.bits[0] >= register_bits;
  out.end_iteration = config.iterations;
  const analysis::DeviationStats stats = analysis::deviation_stats(
      golden.outputs, golden.outputs, config.classify);
  out.outcome = analysis::classify_outputs(golden.outputs, golden.outputs,
                                           /*state_identical=*/false,
                                           config.classify);
  out.first_strong = stats.first_strong;
  out.strong_count = stats.strong_count;
  out.max_deviation = stats.max_deviation;
  return out;
}

}  // namespace

struct CampaignRunner::IterationTap {
  obs::CampaignObserver* observer = nullptr;
  std::size_t worker = 0;
  std::uint64_t experiment = obs::kGoldenExperimentId;
  /// Fault-free outputs for the deviation field; null for the golden run.
  const std::vector<float>* golden_outputs = nullptr;
};

CampaignRunner::ClosedLoop CampaignRunner::run_closed_loop(
    Target& target, const Fault* fault, std::uint64_t iteration_budget,
    const IterationTap* tap, obs::SpanTrack* track,
    const LoopCheckpoints* checkpoints) const {
  ClosedLoop loop;
  loop.outputs.reserve(config_.iterations);

  CheckpointStore* capture =
      checkpoints != nullptr ? checkpoints->capture : nullptr;
  const Checkpoint* resume =
      checkpoints != nullptr ? checkpoints->resume : nullptr;
  const CheckpointStore* converge =
      checkpoints != nullptr ? checkpoints->converge : nullptr;
  const std::vector<float>* golden_out =
      checkpoints != nullptr ? checkpoints->golden_outputs : nullptr;
  // Reconvergence tracking: outputs must stay bit-equal to the golden
  // run's for the early exit to be sound (equal outputs pin the host-side
  // engine/sensor state to the golden trajectory, so only the target's
  // machine state needs comparing at a boundary).  A resumed run's
  // prefilled prefix is the golden prefix, so it starts clean.
  bool outputs_clean = true;

  const std::int64_t setup_begin = track != nullptr ? track->now() : 0;
  plant::Engine engine(config_.engine);
  float y = 0.0f;
  std::size_t start_k = 0;
  if (resume != nullptr) {
    // Resume from the golden snapshot: restore the machine, copy the
    // host-side loop state, and prefill the skipped iterations' outputs
    // from the golden run (they are bit-identical to what replaying them
    // would produce — the golden run IS that replay).
    target.restore_checkpoint(*resume->target);
    target.set_iteration_budget(iteration_budget);
    if (fault != nullptr) target.arm(*fault);
    engine = resume->engine;
    y = resume->measurement;
    start_k = resume->iteration;
    assert(checkpoints->golden_outputs != nullptr &&
           checkpoints->golden_outputs->size() >= start_k);
    loop.outputs.assign(checkpoints->golden_outputs->begin(),
                        checkpoints->golden_outputs->begin() +
                            static_cast<std::ptrdiff_t>(start_k));
    loop.total_time = resume->time;
    loop.max_iteration_time = resume->max_iteration_time;
  } else {
    target.reset();
    target.set_iteration_budget(iteration_budget);
    if (fault != nullptr) target.arm(*fault);
    y = static_cast<float>(engine.speed());
  }
  std::int64_t run_begin = 0;
  if (track != nullptr) {
    run_begin = track->now();
    track->emit(resume != nullptr ? obs::SpanPhase::kCheckpointRestore
                                  : obs::SpanPhase::kSetup,
                setup_begin, run_begin);
  }
  // Golden-replay vs post-inject attribution: the target injects inside
  // the iterate whose cumulative time units cross fault->time, so a
  // private accumulator (ClosedLoop::total_time excludes the detecting
  // iterate) finds the boundary with one compare per iteration — clock
  // reads happen only at the crossing and at the ends.  On a resumed run
  // the pre-inject phase is the residual replay (checkpoint -> injection).
  const bool split = track != nullptr && fault != nullptr;
  const obs::SpanPhase replay_phase = resume != nullptr
                                          ? obs::SpanPhase::kResidualReplay
                                          : obs::SpanPhase::kGoldenReplay;
  std::uint64_t traced_time = resume != nullptr ? resume->time : 0;
  bool crossed = false;
  std::int64_t inject_ts = 0;
  const auto note_iteration = [&](std::uint64_t elapsed) {
    if (!split || crossed) return;
    traced_time += elapsed;
    if (traced_time > fault->time) {
      crossed = true;
      inject_ts = track->now();
      track->emit(replay_phase, run_begin, inject_ts);
    }
  };
  const auto finish_run_span = [&] {
    if (!split) return;
    const std::int64_t end_ts = track->now();
    if (crossed) {
      track->emit(obs::SpanPhase::kPostInjectRun, inject_ts, end_ts);
    } else {
      // The whole run stayed on the golden prefix (injection time beyond
      // the executed window).
      track->emit(replay_phase, run_begin, end_ts);
    }
  };

  for (std::size_t k = start_k; k < config_.iterations; ++k) {
    if (capture != nullptr && config_.checkpoint_interval > 0 &&
        k % config_.checkpoint_interval == 0) {
      Checkpoint cp;
      cp.iteration = k;
      cp.time = loop.total_time;
      cp.max_iteration_time = loop.max_iteration_time;
      cp.engine = engine;
      cp.measurement = y;
      cp.target = target.capture_checkpoint();
      capture->add(std::move(cp));
    }
    // Reconvergence early exit: at a golden checkpoint boundary past the
    // injection point, a run whose outputs are all bit-equal to the golden
    // run's and whose machine state is bit-identical to the golden snapshot
    // is on the golden trajectory in every state the remaining iterations
    // can read — the tail it would execute IS the golden tail.  Copy it in
    // verbatim and finish.  matches_checkpoint() additionally requires the
    // fault to be a spent transient (injected, not stuck-at), so nothing
    // can diverge the synthesized remainder.
    if (converge != nullptr && fault != nullptr && outputs_clean &&
        config_.checkpoint_interval > 0 && k > start_k &&
        k % config_.checkpoint_interval == 0 &&
        loop.total_time > fault->time) {
      const std::size_t idx = k / config_.checkpoint_interval;
      if (idx < converge->size()) {
        const Checkpoint& cp = converge->at(idx);
        if (cp.iteration == k && cp.target != nullptr &&
            target.matches_checkpoint(*cp.target)) {
          assert(golden_out != nullptr && golden_out->size() >= k);
          loop.outputs.insert(
              loop.outputs.end(),
              golden_out->begin() + static_cast<std::ptrdiff_t>(k),
              golden_out->end());
          loop.end_iteration = config_.iterations;
          loop.converged = true;
          if (checkpoints->converge_exits != nullptr) {
            checkpoints->converge_exits->add(1);
          }
          finish_run_span();
          return loop;
        }
      }
    }
    const double t = plant::iteration_time(k);
    const float r = plant::reference_speed(t, config_.signals);
    const IterationOutcome step = target.iterate(r, y);
    note_iteration(step.elapsed);
    if (step.detected) {
      assert(fault != nullptr && "golden run raised a detection");
      loop.detected = true;
      loop.edm = step.edm;
      loop.detection_distance = step.detection_distance;
      loop.end_iteration = k;
      finish_run_span();
      return loop;
    }
    if (tap != nullptr) {
      obs::IterationRecord record;
      record.experiment = tap->experiment;
      record.iteration = static_cast<std::uint32_t>(k);
      record.reference = r;
      record.measurement = y;
      record.output = step.output;
      record.golden_output =
          tap->golden_outputs != nullptr && k < tap->golden_outputs->size()
              ? (*tap->golden_outputs)[k]
              : step.output;
      record.deviation = std::fabs(record.output - record.golden_output);
      const IterationDetail detail = target.iteration_detail();
      record.state = detail.state;
      record.assertion_fired = detail.assertion_fired;
      record.recovery_fired = detail.recovery_fired;
      record.elapsed = step.elapsed;
      tap->observer->on_iteration(tap->worker, record);
    }
    if (converge != nullptr && outputs_clean) {
      // Bit compare, not ==: -0.0f must not pass for +0.0f (the synthesized
      // tail claims bit-identical outputs).
      outputs_clean = k < golden_out->size() &&
                      util::float_to_bits(step.output) ==
                          util::float_to_bits((*golden_out)[k]);
    }
    loop.outputs.push_back(step.output);
    loop.total_time += step.elapsed;
    loop.max_iteration_time = std::max(loop.max_iteration_time, step.elapsed);
    y = engine.step(step.output, plant::engine_load(t, config_.signals));
  }
  loop.end_iteration = config_.iterations;
  finish_run_span();
  return loop;
}

std::uint64_t scaled_watchdog_budget(std::uint64_t max_iteration_time,
                                     double factor) {
  if (factor <= 0.0) return 1;
  // The factor keeps 16 fractional bits; the product runs in 128 bits, so
  // no intermediate ever rounds (a double round-trip of the time loses
  // precision above 2^53).  2^48 caps the fixed-point factor so the cast
  // below cannot overflow even after the << 16.
  constexpr unsigned kShift = 16;
  constexpr double kMaxFactor = 281474976710656.0;  // 2^48
  const double fixed_factor = factor * static_cast<double>(1u << kShift);
  if (fixed_factor >= kMaxFactor) return ~std::uint64_t{0};
  const unsigned __int128 product =
      static_cast<unsigned __int128>(
          static_cast<std::uint64_t>(fixed_factor)) *
      max_iteration_time;
  const unsigned __int128 budget = product >> kShift;
  if (budget > static_cast<unsigned __int128>(~std::uint64_t{0})) {
    return ~std::uint64_t{0};
  }
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(budget));
}

std::uint64_t CampaignRunner::watchdog_budget(const GoldenRun& golden) const {
  return scaled_watchdog_budget(golden.max_iteration_time,
                                config_.watchdog_factor);
}

GoldenRun CampaignRunner::run_golden(Target& target,
                                     obs::CampaignObserver* observer,
                                     CheckpointStore* capture) const {
  IterationTap tap;
  const bool detail = observer != nullptr && observer->wants_iterations();
  if (detail) {
    target.set_detail(true);
    tap.observer = observer;
  }
  LoopCheckpoints hooks;
  hooks.capture = capture;
  // An unconstrained budget for the reference run; the real watchdog value
  // derives from what this run measures.
  ClosedLoop loop = run_closed_loop(target, nullptr, std::uint64_t{1} << 32,
                                    detail ? &tap : nullptr, nullptr,
                                    capture != nullptr ? &hooks : nullptr);
  GoldenRun golden;
  golden.outputs = std::move(loop.outputs);
  golden.total_time = loop.total_time;
  golden.max_iteration_time = loop.max_iteration_time;
  golden.final_state = target.observable_state();
  return golden;
}

CampaignRunner::LocationBounds CampaignRunner::location_bounds(
    std::uint64_t fault_space_bits, std::uint64_t register_bits) const {
  LocationBounds bounds;
  bounds.hi = fault_space_bits;
  switch (config_.filter) {
    case LocationFilter::kAll:
      break;
    case LocationFilter::kRegistersOnly:
      bounds.hi = register_bits;
      break;
    case LocationFilter::kCacheOnly:
      bounds.lo = register_bits;
      break;
  }
  return bounds;
}

std::vector<Fault> CampaignRunner::sample_faults(
    std::uint64_t fault_space_bits, std::uint64_t register_bits,
    std::uint64_t time_space) const {
  const LocationBounds bounds =
      location_bounds(fault_space_bits, register_bits);
  util::Rng rng(config_.seed);
  std::vector<Fault> faults;
  faults.reserve(config_.experiments);
  for (std::size_t i = 0; i < config_.experiments; ++i) {
    faults.push_back(
        sample_fault(config_.fault, bounds.lo, bounds.hi, time_space, rng));
  }
  return faults;
}

ExperimentResult CampaignRunner::run_experiment(
    Target& target, const Fault& fault, std::uint64_t id,
    const GoldenRun& golden, std::uint64_t register_bits,
    obs::CampaignObserver* observer, std::size_t worker,
    obs::SpanTrack* track, const Checkpoint* resume,
    const CheckpointStore* converge, obs::Counter* converge_exits) const {
  ExperimentResult result;
  result.id = id;
  result.fault = fault;
  result.cache_location = fault.bits[0] >= register_bits;

  IterationTap tap;
  const bool detail = observer != nullptr && observer->wants_iterations();
  if (detail) {
    tap.observer = observer;
    tap.worker = worker;
    tap.experiment = id;
    tap.golden_outputs = &golden.outputs;
  }
  LoopCheckpoints hooks;
  hooks.resume = resume;
  hooks.golden_outputs = &golden.outputs;
  hooks.converge = converge;
  hooks.converge_exits = converge_exits;
  const ClosedLoop loop = run_closed_loop(
      target, &fault, watchdog_budget(golden), detail ? &tap : nullptr, track,
      resume != nullptr || converge != nullptr ? &hooks : nullptr);
  result.end_iteration = loop.end_iteration;
  if (loop.detected) {
    result.outcome = analysis::Outcome::kDetected;
    result.edm = loop.edm;
    result.detection_distance = loop.detection_distance;
    return result;
  }

  const std::int64_t classify_begin = track != nullptr ? track->now() : 0;
  // A converged run's final state is known (golden at the exit boundary,
  // executing the golden tail lands on the golden final state) without
  // asking the target, whose machine was left at the exit boundary.
  const bool state_identical =
      loop.converged || target.observable_state() == golden.final_state;
  const analysis::DeviationStats stats =
      analysis::deviation_stats(golden.outputs, loop.outputs,
                                config_.classify);
  result.outcome = analysis::classify_outputs(golden.outputs, loop.outputs,
                                              state_identical,
                                              config_.classify);
  result.first_strong = stats.first_strong;
  result.strong_count = stats.strong_count;
  result.max_deviation = stats.max_deviation;
  if (track != nullptr) {
    track->emit(obs::SpanPhase::kClassify, classify_begin, track->now());
  }
  // Propagation capture runs after classification on a prober-private
  // execution, so it cannot influence the outcome above.
  if (prober_ && analysis::is_value_failure(result.outcome)) {
    const obs::ScopedSpan probe_span(track, obs::SpanPhase::kProbe);
    result.propagation = prober_(fault);
  }
  return result;
}

std::vector<float> CampaignRunner::replay_outputs(Target& target,
                                                  const Fault& fault,
                                                  const GoldenRun& golden) const {
  return run_closed_loop(target, &fault, watchdog_budget(golden)).outputs;
}

CampaignResult CampaignRunner::run(const TargetFactory& factory,
                                   obs::CampaignObserver* observer) const {
  return run_range(factory, observer, 0, config_.experiments);
}

CampaignResult CampaignRunner::run_range(const TargetFactory& factory,
                                         obs::CampaignObserver* observer,
                                         std::size_t first,
                                         std::size_t count) const {
  first = std::min(first, config_.experiments);
  count = std::min(count, config_.experiments - first);
  const bool sharded = first != 0 || count != config_.experiments;

  CampaignResult result;
  result.config = config_;

  // Campaign-level spans (golden run, fault sampling, the whole campaign)
  // live on their own track; per-experiment lifecycle spans go to
  // per-worker tracks created below.
  obs::SpanTrack* campaign_track =
      tracer_ != nullptr ? tracer_->track("campaign") : nullptr;
  const std::int64_t campaign_begin =
      campaign_track != nullptr ? campaign_track->now() : 0;

  const std::unique_ptr<Target> probe = factory();
  if (observer != nullptr) probe->set_profiling(true);
  result.fault_space_bits = probe->fault_space_bits();
  result.register_partition_bits = probe->register_partition_bits();

  std::size_t workers = config_.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers = std::min(workers, std::max<std::size_t>(1, count));

  // A sharded run never honors extensions (the shard bounds are part of
  // the coordinator's plan), so the extend baseline is not bound either.
  if (controller_ != nullptr && !sharded) {
    controller_->bind_base_experiments(config_.experiments);
  }

  if (observer != nullptr) {
    obs::CampaignStartInfo info;
    info.fault_space_bits = result.fault_space_bits;
    info.register_partition_bits = result.register_partition_bits;
    info.workers = workers;
    observer->on_campaign_start(config_, info);
  }

  // Checkpoint/restore and def/use pruning are disabled in detail mode:
  // restored runs skip the checkpointed prefix's iterations and synthesized
  // members never execute at all, so neither can deliver the per-iteration
  // records detail mode promises.
  const bool detail = observer != nullptr && observer->wants_iterations();
  CheckpointStore checkpoint_store;
  const bool use_checkpoints = config_.checkpoint_interval > 0 && !detail &&
                               probe->supports_checkpoints();

  {
    const obs::ScopedSpan golden_span(campaign_track,
                                      obs::SpanPhase::kGoldenRun);
    result.golden = run_golden(*probe, observer,
                               use_checkpoints ? &checkpoint_store : nullptr);
  }
  if (observer != nullptr) observer->on_golden_done(result.golden);
  // Every shortcut below — checkpoint restore, untouched-latent rows, the
  // reconvergence early exit — claims some golden-identical iterations run
  // to completion without a detection.  With a watchdog budget below the
  // golden maximum that claim is false (even golden-identical iterations
  // trip the watchdog), so all shortcuts are disabled and every experiment
  // executes in full from reset.
  const bool synth_safe =
      watchdog_budget(result.golden) >= result.golden.max_iteration_time;
  const CheckpointStore* checkpoints =
      use_checkpoints && synth_safe && !checkpoint_store.empty()
          ? &checkpoint_store
          : nullptr;

  // Shared work queue.  The fault list can grow mid-campaign (controller
  // extend), so claims, result stores and growth all happen under one
  // mutex; experiments themselves run unlocked on worker-private targets.
  // The sampler persists across extensions: extending by M continues the
  // seed-derived stream exactly where the initial N left off, which is
  // what makes "run N, extend M" bit-identical to running N + M.
  struct WorkQueue {
    std::mutex mutex;
    std::vector<Fault> faults;
    std::vector<ExperimentResult> results;
    /// done[i]: results[i] is stored.  Only consulted under pruning, where
    /// a synthesized member must wait for its class representative (always
    /// claimed first — representatives have the lowest class index and
    /// claims go in index order, so the wait is only ever for an in-flight
    /// experiment, which completes unconditionally; no deadlock with
    /// pause/stop, whose checks precede claims).
    std::vector<std::uint8_t> done;
    std::condition_variable rep_done;
    std::size_t next = 0;
    util::Rng rng;
    explicit WorkQueue(std::uint64_t seed) : rng(seed) {}
  };
  WorkQueue queue(config_.seed);
  const LocationBounds bounds = location_bounds(
      result.fault_space_bits, result.register_partition_bits);
  const std::uint64_t time_space = result.golden.total_time;

  {
    const obs::ScopedSpan sample_span(campaign_track,
                                      obs::SpanPhase::kSampleFaults);
    // A shard samples the whole prefix [0, first+count) — the faults
    // before `first` are discarded but advancing the persistent stream
    // through them is what gives every shard the same absolute fault list
    // a single-node run sees.
    queue.faults.reserve(first + count);
    for (std::size_t i = 0; i < first + count; ++i) {
      queue.faults.push_back(sample_fault(config_.fault, bounds.lo, bounds.hi,
                                          time_space, queue.rng));
    }
    queue.results.resize(queue.faults.size());
    queue.done.resize(queue.faults.size(), 0);
    queue.next = first;
  }

  // Def/use pruning: resolve every sampled (bit, time) cell's next touch
  // with one recorded golden replay, then collapse equivalent faults.
  // Stuck-at faults are excluded (re-forcing the bits every iteration
  // breaks the untouched-window equivalence argument), as are extensions
  // sampled after this point (they run unpruned, preserving the
  // extend-vs-fresh bit-identity of the expanded rows).  A sub-golden
  // watchdog budget disables pruning too: the member-synthesis
  // detection-distance shift assumes detections track the injection time,
  // but a prefix watchdog trip lands at a fault-independent iteration.
  // Plan indices are shard-relative (absolute = first + relative): the
  // plan is built over this run's own slice so a synthesized member's
  // representative is always claimed by this run, never by another shard.
  // Shard-local pruning collapses fewer classes than a whole-campaign plan
  // would, but expanded rows are bit-identical to brute force either way,
  // so the merged campaign is unaffected.
  PrunePlan plan;
  if (config_.prune && synth_safe && !detail &&
      !is_stuck_at(config_.fault.kind) && queue.faults.size() > first) {
    const std::vector<Fault> shard_faults(queue.faults.begin() + first,
                                          queue.faults.end());
    std::vector<TouchQuery> queries = make_touch_queries(shard_faults);
    if (probe->begin_touch_recording(&queries)) {
      {
        // The recorded replay is a second golden run; account it as one.
        const obs::ScopedSpan defuse_span(campaign_track,
                                          obs::SpanPhase::kGoldenRun);
        run_closed_loop(*probe, nullptr, std::uint64_t{1} << 32);
      }
      probe->end_touch_recording();
      plan = build_prune_plan(shard_faults, queries);
    }
  }

  std::vector<obs::SpanTrack*> worker_tracks(workers, nullptr);
  if (tracer_ != nullptr) {
    for (std::size_t w = 0; w < workers; ++w) {
      worker_tracks[w] = tracer_->track("worker " + std::to_string(w));
    }
  }

  // Hot-path self-observability: one sample per claim attempt covering
  // lock acquisition, pending extensions and the fault hand-off — the
  // series contention regressions show up in first.  Resolved once so the
  // claim path never touches the registry's name map.
  obs::Histogram* claim_latency = nullptr;
  obs::Counter* checkpoint_restores = nullptr;
  obs::Counter* checkpoint_saved = nullptr;
  obs::Counter* converge_exits = nullptr;
  obs::Counter* prune_untouched = nullptr;
  if (metrics_ != nullptr) {
    metrics_->set_help("earl.claim_latency_ns",
                       "Experiment-claim latency (queue mutex + fault "
                       "sampling), nanoseconds.");
    claim_latency =
        &metrics_->histogram("earl.claim_latency_ns", obs::latency_ns_bounds());
    metrics_->set_help("earl.checkpoint_captures",
                       "Golden-run checkpoints captured this campaign.");
    metrics_->set_help("earl.checkpoint_restores",
                       "Experiments started from a restored checkpoint.");
    metrics_->set_help("earl.checkpoint_instructions_saved",
                       "Golden-prefix time units skipped via checkpoint "
                       "restore (sum over experiments).");
    metrics_->set_help("earl.prune_classes",
                       "Def/use equivalence classes in the initial fault "
                       "list (each runs once).");
    metrics_->set_help("earl.prune_synthesized",
                       "Fault-list members whose results are synthesized "
                       "from their class representative.");
    metrics_->set_help("earl.checkpoint_converge_exits",
                       "Experiments ended early at a golden checkpoint "
                       "boundary they had provably reconverged to.");
    metrics_->set_help("earl.prune_untouched",
                       "Never-touched faults whose latent rows were "
                       "synthesized with zero execution.");
    metrics_->counter("earl.checkpoint_captures").add(checkpoint_store.size());
    checkpoint_restores = &metrics_->counter("earl.checkpoint_restores");
    checkpoint_saved =
        &metrics_->counter("earl.checkpoint_instructions_saved");
    converge_exits = &metrics_->counter("earl.checkpoint_converge_exits");
    prune_untouched = &metrics_->counter("earl.prune_untouched");
    if (plan.active()) {
      metrics_->counter("earl.prune_classes").add(plan.classes);
      metrics_->counter("earl.prune_synthesized").add(plan.synthesized);
    }
  }

  // Claims the next experiment, applying any pending extension first.
  // Returns false when the queue is drained.  The extension notification
  // fires under the queue mutex so observers learn the new total strictly
  // before any on_experiment_done for an extended index.
  const auto claim = [&](std::size_t w, std::size_t& index,
                         Fault& fault) -> bool {
    const auto claim_start = std::chrono::steady_clock::now();
    const std::int64_t span_begin = tracer_ != nullptr ? tracer_->now() : 0;
    bool ok = false;
    {
      const std::lock_guard<std::mutex> lock(queue.mutex);
      if (controller_ != nullptr && !sharded) {
        const std::size_t target_n = controller_->target_experiments();
        if (target_n > queue.faults.size()) {
          while (queue.faults.size() < target_n) {
            queue.faults.push_back(sample_fault(config_.fault, bounds.lo,
                                                bounds.hi, time_space,
                                                queue.rng));
          }
          queue.results.resize(queue.faults.size());
          queue.done.resize(queue.faults.size(), 0);
          if (observer != nullptr) {
            observer->on_campaign_extended(w, queue.faults.size());
          }
        }
      }
      if (queue.next < queue.faults.size()) {
        index = queue.next++;
        fault = queue.faults[index];
        ok = true;
      }
    }
    // Observed outside the queue mutex: Histogram::observe takes its own
    // lock, and serializing it under the claim lock would inflate the
    // very latency being measured.
    if (claim_latency != nullptr) {
      claim_latency->observe(static_cast<double>(elapsed_ns(claim_start)));
    }
    // The claim span is emitted post-hoc (the sampling decision needs the
    // claimed index); set_scope tags the experiment's subsequent spans.
    if (ok && tracer_ != nullptr && tracer_->sampled(index)) {
      obs::SpanTrack* track = worker_tracks[w];
      track->set_scope(index);
      track->emit(obs::SpanPhase::kClaim, span_begin, track->now(), index);
    }
    return ok;
  };

  // Raised by the worker that finds the queue empty; releases workers
  // parked above the soft cap, which would otherwise never observe the
  // drain and hang the join below.
  std::atomic<bool> drained{false};

  const auto worker_fn = [&](std::size_t w, Target& mine) {
    for (;;) {
      // Control checks precede the claim, so every claimed index is
      // completed: [0, next) is a contiguous, fully-run prefix across
      // pauses, worker-cap parks and drains alike.
      if (controller_ != nullptr &&
          !controller_->wait_until_runnable(w, &drained)) {
        break;
      }
      if (stop_requested()) break;
      std::size_t i = 0;
      Fault fault;
      if (!claim(w, i, fault)) {
        drained.store(true, std::memory_order_relaxed);
        if (controller_ != nullptr) controller_->wake_parked();
        break;
      }
      obs::SpanTrack* track = nullptr;
      if (tracer_ != nullptr) {
        track = tracer_->sampled(i) ? worker_tracks[w] : nullptr;
        // The target emits its nested spans (reset, inject) onto the same
        // track; detaching for unsampled experiments keeps them span-free.
        mine.set_span_track(track);
      }
      const auto started = std::chrono::steady_clock::now();
      ExperimentResult experiment;
      if (plan.is_member(i - first)) {
        // Synthesized member: copy the class representative's result.  The
        // rep has a lower index, so it was claimed strictly earlier; wait
        // only for its in-flight run to store.  Copies happen under the
        // mutex — extensions may reallocate the vectors.
        const std::size_t rep = first + plan.rep_of(i - first);
        ExperimentResult rep_result;
        Fault rep_fault;
        {
          std::unique_lock<std::mutex> lock(queue.mutex);
          queue.rep_done.wait(lock, [&] { return queue.done[rep] != 0; });
          rep_result = queue.results[rep];
          rep_fault = queue.faults[rep];
        }
        experiment = synthesize_member(rep_result, rep_fault, fault, i);
        // Re-probe with the member's own fault so the (passive) propagation
        // record matches the member, not the rep.
        if (prober_ && analysis::is_value_failure(experiment.outcome)) {
          const obs::ScopedSpan probe_span(track, obs::SpanPhase::kProbe);
          experiment.propagation = prober_(fault);
        }
      } else if (plan.is_untouched(i - first)) {
        // A fault no instruction ever observes again: its latent row is
        // known without running anything (see synthesize_latent).
        experiment = synthesize_latent(fault, i, result.golden,
                                       result.register_partition_bits,
                                       config_);
        if (prune_untouched != nullptr) prune_untouched->add(1);
      } else {
        const Checkpoint* resume =
            checkpoints != nullptr ? checkpoints->nearest(fault.time)
                                   : nullptr;
        if (resume != nullptr) {
          if (checkpoint_restores != nullptr) checkpoint_restores->add(1);
          if (checkpoint_saved != nullptr) checkpoint_saved->add(resume->time);
        }
        experiment = run_experiment(
            mine, fault, i, result.golden, result.register_partition_bits,
            observer, w, track, resume, checkpoints, converge_exits);
      }
      const std::int64_t store_begin = track != nullptr ? track->now() : 0;
      if (observer != nullptr) {
        observer->on_experiment_done(w, experiment, elapsed_ns(started));
      }
      {
        const std::lock_guard<std::mutex> lock(queue.mutex);
        queue.results[i] = std::move(experiment);
        queue.done[i] = 1;
      }
      if (plan.active()) queue.rep_done.notify_all();
      if (track != nullptr) {
        track->emit(obs::SpanPhase::kStore, store_begin, track->now());
      }
    }
    if (observer != nullptr) observer->on_worker_profile(w, mine.profile());
  };

  if (workers <= 1) {
    worker_fn(0, *probe);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        const std::unique_ptr<Target> target = w == 0 ? nullptr : factory();
        Target& mine = w == 0 ? *probe : *target;
        if (observer != nullptr && w != 0) mine.set_profiling(true);
        if (detail && w != 0) mine.set_detail(true);
        worker_fn(w, mine);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  const std::size_t total = queue.faults.size();
  const std::size_t completed = std::min(queue.next, total);
  queue.results.resize(completed);
  // A shard reports only its own slice (still id-ordered, absolute ids);
  // the never-run prefix [0, first) is dropped.
  result.experiments.assign(
      std::make_move_iterator(queue.results.begin() + first),
      std::make_move_iterator(queue.results.end()));
  result.interrupted = completed < total;
  // Reflect live extensions so reports match a campaign configured this
  // large from the start.  A shard keeps the full-campaign total: its rows
  // are a slice of that campaign, not a smaller one.
  result.config.experiments = sharded ? config_.experiments : total;
  if (plan.active()) {
    // Collapsed view: one row per class within the completed prefix, each
    // weighted by how many sampled faults it stands for (extensions and
    // unfinished members stay singletons/absent; rep_of(i) <= i keeps
    // every referenced representative inside the prefix).  Shard-relative
    // throughout — result.experiments is already the slice.
    const std::size_t done = completed - first;
    std::vector<std::uint64_t> weights(done, 0);
    for (std::size_t i = 0; i < done; ++i) {
      ++weights[plan.rep_of(i)];
    }
    for (std::size_t i = 0; i < done; ++i) {
      if (plan.rep_of(i) != i) continue;
      ExperimentResult rep = result.experiments[i];
      rep.weight = weights[i];
      result.representatives.push_back(std::move(rep));
    }
    result.prune_classes = result.representatives.size();
    result.prune_synthesized = done - result.representatives.size();
  }
  if (observer != nullptr) observer->on_campaign_end(result);
  if (campaign_track != nullptr) {
    campaign_track->emit(obs::SpanPhase::kCampaign, campaign_begin,
                         campaign_track->now());
  }
  return result;
}

}  // namespace earl::fi
