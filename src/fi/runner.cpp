#include "fi/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/rng.hpp"

namespace earl::fi {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

struct CampaignRunner::IterationTap {
  obs::CampaignObserver* observer = nullptr;
  std::size_t worker = 0;
  std::uint64_t experiment = obs::kGoldenExperimentId;
  /// Fault-free outputs for the deviation field; null for the golden run.
  const std::vector<float>* golden_outputs = nullptr;
};

CampaignRunner::ClosedLoop CampaignRunner::run_closed_loop(
    Target& target, const Fault* fault, std::uint64_t iteration_budget,
    const IterationTap* tap) const {
  ClosedLoop loop;
  loop.outputs.reserve(config_.iterations);

  target.reset();
  target.set_iteration_budget(iteration_budget);
  if (fault != nullptr) target.arm(*fault);

  plant::Engine engine(config_.engine);
  float y = static_cast<float>(engine.speed());
  for (std::size_t k = 0; k < config_.iterations; ++k) {
    const double t = plant::iteration_time(k);
    const float r = plant::reference_speed(t, config_.signals);
    const IterationOutcome step = target.iterate(r, y);
    if (step.detected) {
      assert(fault != nullptr && "golden run raised a detection");
      loop.detected = true;
      loop.edm = step.edm;
      loop.detection_distance = step.detection_distance;
      loop.end_iteration = k;
      return loop;
    }
    if (tap != nullptr) {
      obs::IterationRecord record;
      record.experiment = tap->experiment;
      record.iteration = static_cast<std::uint32_t>(k);
      record.reference = r;
      record.measurement = y;
      record.output = step.output;
      record.golden_output =
          tap->golden_outputs != nullptr && k < tap->golden_outputs->size()
              ? (*tap->golden_outputs)[k]
              : step.output;
      record.deviation = std::fabs(record.output - record.golden_output);
      const IterationDetail detail = target.iteration_detail();
      record.state = detail.state;
      record.assertion_fired = detail.assertion_fired;
      record.recovery_fired = detail.recovery_fired;
      record.elapsed = step.elapsed;
      tap->observer->on_iteration(tap->worker, record);
    }
    loop.outputs.push_back(step.output);
    loop.total_time += step.elapsed;
    loop.max_iteration_time = std::max(loop.max_iteration_time, step.elapsed);
    y = engine.step(step.output, plant::engine_load(t, config_.signals));
  }
  loop.end_iteration = config_.iterations;
  return loop;
}

std::uint64_t CampaignRunner::watchdog_budget(const GoldenRun& golden) const {
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(golden.max_iteration_time) *
             config_.watchdog_factor));
}

GoldenRun CampaignRunner::run_golden(Target& target,
                                     obs::CampaignObserver* observer) const {
  IterationTap tap;
  const bool detail = observer != nullptr && observer->wants_iterations();
  if (detail) {
    target.set_detail(true);
    tap.observer = observer;
  }
  // An unconstrained budget for the reference run; the real watchdog value
  // derives from what this run measures.
  ClosedLoop loop = run_closed_loop(target, nullptr, std::uint64_t{1} << 32,
                                    detail ? &tap : nullptr);
  GoldenRun golden;
  golden.outputs = std::move(loop.outputs);
  golden.total_time = loop.total_time;
  golden.max_iteration_time = loop.max_iteration_time;
  golden.final_state = target.observable_state();
  return golden;
}

std::vector<Fault> CampaignRunner::sample_faults(
    std::uint64_t fault_space_bits, std::uint64_t register_bits,
    std::uint64_t time_space) const {
  std::uint64_t location_lo = 0;
  std::uint64_t location_hi = fault_space_bits;
  switch (config_.filter) {
    case LocationFilter::kAll:
      break;
    case LocationFilter::kRegistersOnly:
      location_hi = register_bits;
      break;
    case LocationFilter::kCacheOnly:
      location_lo = register_bits;
      break;
  }
  util::Rng rng(config_.seed);
  std::vector<Fault> faults;
  faults.reserve(config_.experiments);
  for (std::size_t i = 0; i < config_.experiments; ++i) {
    faults.push_back(sample_fault(config_.fault, location_lo, location_hi,
                                  time_space, rng));
  }
  return faults;
}

ExperimentResult CampaignRunner::run_experiment(
    Target& target, const Fault& fault, std::uint64_t id,
    const GoldenRun& golden, std::uint64_t register_bits,
    obs::CampaignObserver* observer, std::size_t worker) const {
  ExperimentResult result;
  result.id = id;
  result.fault = fault;
  result.cache_location = fault.bits[0] >= register_bits;

  IterationTap tap;
  const bool detail = observer != nullptr && observer->wants_iterations();
  if (detail) {
    tap.observer = observer;
    tap.worker = worker;
    tap.experiment = id;
    tap.golden_outputs = &golden.outputs;
  }
  const ClosedLoop loop = run_closed_loop(target, &fault,
                                          watchdog_budget(golden),
                                          detail ? &tap : nullptr);
  result.end_iteration = loop.end_iteration;
  if (loop.detected) {
    result.outcome = analysis::Outcome::kDetected;
    result.edm = loop.edm;
    result.detection_distance = loop.detection_distance;
    return result;
  }

  const bool state_identical = target.observable_state() == golden.final_state;
  const analysis::DeviationStats stats =
      analysis::deviation_stats(golden.outputs, loop.outputs,
                                config_.classify);
  result.outcome = analysis::classify_outputs(golden.outputs, loop.outputs,
                                              state_identical,
                                              config_.classify);
  result.first_strong = stats.first_strong;
  result.strong_count = stats.strong_count;
  result.max_deviation = stats.max_deviation;
  // Propagation capture runs after classification on a prober-private
  // execution, so it cannot influence the outcome above.
  if (prober_ && analysis::is_value_failure(result.outcome)) {
    result.propagation = prober_(fault);
  }
  return result;
}

std::vector<float> CampaignRunner::replay_outputs(Target& target,
                                                  const Fault& fault,
                                                  const GoldenRun& golden) const {
  return run_closed_loop(target, &fault, watchdog_budget(golden)).outputs;
}

CampaignResult CampaignRunner::run(const TargetFactory& factory,
                                   obs::CampaignObserver* observer) const {
  CampaignResult result;
  result.config = config_;

  const std::unique_ptr<Target> probe = factory();
  if (observer != nullptr) probe->set_profiling(true);
  result.fault_space_bits = probe->fault_space_bits();
  result.register_partition_bits = probe->register_partition_bits();

  std::size_t workers = config_.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers = std::min(workers, std::max<std::size_t>(1, config_.experiments));

  if (observer != nullptr) {
    obs::CampaignStartInfo info;
    info.fault_space_bits = result.fault_space_bits;
    info.register_partition_bits = result.register_partition_bits;
    info.workers = workers;
    observer->on_campaign_start(config_, info);
  }

  result.golden = run_golden(*probe, observer);
  if (observer != nullptr) observer->on_golden_done(result.golden);
  const bool detail = observer != nullptr && observer->wants_iterations();

  const std::vector<Fault> faults = sample_faults(
      result.fault_space_bits, result.register_partition_bits,
      result.golden.total_time);

  result.experiments.resize(faults.size());

  if (workers <= 1) {
    std::size_t completed = 0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (stop_requested()) break;
      const auto started = std::chrono::steady_clock::now();
      result.experiments[i] =
          run_experiment(*probe, faults[i], i, result.golden,
                         result.register_partition_bits, observer, 0);
      completed = i + 1;
      if (observer != nullptr) {
        observer->on_experiment_done(0, result.experiments[i],
                                     elapsed_ns(started));
      }
    }
    if (completed < faults.size()) {
      result.experiments.resize(completed);
      result.interrupted = true;
    }
    if (observer != nullptr) {
      observer->on_worker_profile(0, probe->profile());
      observer->on_campaign_end(result);
    }
    return result;
  }

  // Workers pull experiment indices from a shared counter; each owns a
  // private target so no synchronization beyond the counter is needed.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      const std::unique_ptr<Target> target =
          w == 0 ? nullptr : factory();
      Target& mine = w == 0 ? *probe : *target;
      if (observer != nullptr && w != 0) mine.set_profiling(true);
      if (detail && w != 0) mine.set_detail(true);
      for (;;) {
        // The stop check precedes the claim, so every claimed index is
        // completed: [0, next) is a contiguous, fully-run prefix even when
        // a drain stops the campaign mid-flight.
        if (stop_requested()) break;
        const std::size_t i = next.fetch_add(1);
        if (i >= faults.size()) break;
        const auto started = std::chrono::steady_clock::now();
        result.experiments[i] =
            run_experiment(mine, faults[i], i, result.golden,
                           result.register_partition_bits, observer, w);
        if (observer != nullptr) {
          observer->on_experiment_done(w, result.experiments[i],
                                       elapsed_ns(started));
        }
      }
      if (observer != nullptr) observer->on_worker_profile(w, mine.profile());
    });
  }
  for (std::thread& t : threads) t.join();
  const std::size_t completed = std::min(next.load(), faults.size());
  if (completed < faults.size()) {
    result.experiments.resize(completed);
    result.interrupted = true;
  }
  if (observer != nullptr) observer->on_campaign_end(result);
  return result;
}

}  // namespace earl::fi
