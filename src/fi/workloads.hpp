// Canonical workloads and campaign presets for the paper's experiments.
//
// Centralizes the diagram -> codegen -> assemble pipeline for the PI
// controller (Algorithm I / II / trap-ablation) and the target factories
// and campaign configurations that the benches, examples and integration
// tests share.  Defaults reproduce the paper's experimental parameters:
// 650 iterations, single bit-flips, uniform location/time sampling, 9290
// experiments for Algorithm I (Table 2) and 2372 for Algorithm II
// (Table 3).
#pragma once

#include "analysis/propagation.hpp"
#include "codegen/robustify.hpp"
#include "control/pi.hpp"
#include "fi/runner.hpp"
#include "fi/tvm_target.hpp"
#include "tvm/assembler.hpp"

namespace earl::fi {

/// The calibrated controller configuration used by every paper experiment:
/// gains giving the Figure 3 closed-loop shape, 15.4 ms sample interval,
/// throttle limits [0, 70] degrees, and the integrator pre-set to the
/// equilibrium throttle for the initial 2000 rpm operating point (the
/// paper's traces start in steady state).
control::PiConfig paper_pi_config();

/// Assembles the generated PI controller program. Asserts (debug) /
/// guarantees (by construction + tests) a clean assembly.
tvm::AssembledProgram build_pi_program(
    const control::PiConfig& config = {},
    codegen::RobustnessMode mode = codegen::RobustnessMode::kNone);

/// SCIFI factory: PI workload on a TVM.
TargetFactory make_tvm_pi_factory(
    const control::PiConfig& config = {},
    codegen::RobustnessMode mode = codegen::RobustnessMode::kNone,
    tvm::CacheConfig cache_config = {});

/// SWIFI factory: native PI controller (robust = Algorithm II).
TargetFactory make_native_pi_factory(const control::PiConfig& config = {},
                                     bool robust = false);

/// Detail-mode propagation prober for SCIFI campaigns: re-executes the
/// fault's post-injection window on a prober-private machine pair (golden +
/// faulty, per analysis::analyze_propagation) and returns the compact
/// architectural propagation record.  Thread-safe — each call builds its
/// own machines from the shared program image.  Note the analysis window
/// starts at a fresh reset (the fault's sampled injection *time* is not
/// replayed), so the record describes the fault's architectural character,
/// not the exact campaign episode.
CampaignRunner::PropagationProber make_tvm_propagation_prober(
    std::shared_ptr<const tvm::AssembledProgram> program,
    analysis::PropagationOptions options = {});

/// Factory for a (technique, workload) pair in the CLI's vocabulary
/// (technique "scifi" | "swifi"; workload "alg1" | "alg2" | "alg2rate" |
/// "trap", the latter two SCIFI-only) — shared by earl-goofi and the
/// distributed-campaign worker so a CampaignSpec rebuilds the exact same
/// target everywhere.  Returns a null factory with a one-line message in
/// `*error` for unknown combinations.
TargetFactory make_campaign_factory(const std::string& technique,
                                    const std::string& workload, bool parity,
                                    std::string* error);

/// Campaign presets. `scale` in (0, 1] shrinks the experiment count for
/// quick runs (tests use ~0.05); benches honour the EARL_CAMPAIGN_SCALE
/// environment variable through campaign_scale_from_env().
CampaignConfig table2_campaign(double scale = 1.0);  // Algorithm I,  9290
CampaignConfig table3_campaign(double scale = 1.0);  // Algorithm II, 2372

double campaign_scale_from_env();

}  // namespace earl::fi
