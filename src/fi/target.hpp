// Target abstraction for fault-injection campaigns.
//
// GOOFI's architecture separates the campaign engine from the target system
// and the injection technique; the same separation lives here.  A Target is
// a controller implementation that the campaign runner drives one iteration
// at a time from the host-side environment simulator, with a fault armed to
// fire at a sampled point in the run:
//
//   TvmTarget    — SCIFI: the controller program executes on the TVM; the
//                  armed fault is injected through the scan chain at a
//                  dynamic-instruction boundary.
//   NativeTarget — SWIFI: the controller is native code; the armed fault is
//                  injected into the controller's state variables at an
//                  iteration boundary.
//
// Time base: iterate() reports how many "time units" elapsed (instructions
// for SCIFI, 1 per iteration for SWIFI).  The golden run's accumulated
// total defines the uniform time-sampling space, so campaign code is
// identical across techniques.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fi/fault_model.hpp"
#include "obs/profile.hpp"
#include "tvm/edm.hpp"

namespace earl::obs {
class SpanTrack;
}  // namespace earl::obs

namespace earl::fi {

/// Opaque snapshot of a target's complete execution state (machine, caches,
/// retired-instruction count), captured during the golden run and restored
/// at the start of later experiments so they replay only the residual
/// prefix up to their injection point.  Concrete targets subclass this;
/// snapshots are shared read-only between workers, so restoring must copy.
struct TargetCheckpoint {
  virtual ~TargetCheckpoint() = default;
};

/// Sentinel for a TouchQuery that is never resolved: the bit is neither
/// read nor written at or after the queried time.
inline constexpr std::uint64_t kNoNextTouch = ~std::uint64_t{0};

/// One def/use liveness question over the golden trace: "when is scan-chain
/// bit `bit` next read or written at or after dynamic time `time`?".  The
/// runner batches one query per sampled (bit, time) cell and resolves them
/// all in a single recorded golden replay; two faults whose bits share the
/// same answers are provably equivalent (nothing observes the flipped bits
/// between the two injection points), which is what def/use pruning
/// collapses.
struct TouchQuery {
  std::size_t bit = 0;
  std::uint64_t time = 0;
  std::uint64_t next_touch = kNoNextTouch;
};

/// Per-iteration facts captured only in detail mode (GOOFI's detail mode,
/// surfaced through obs::CampaignObserver::on_iteration).  All fields are
/// read-only views of state the iteration produced anyway — capturing them
/// must never change an experiment's outcome.
struct IterationDetail {
  float state = 0.0f;          // controller integrator state x after the step
  bool assertion_fired = false;  // an executable assertion took its bad path
  bool recovery_fired = false;   // ... and best-effort recovery ran
};

struct IterationOutcome {
  float output = 0.0f;
  bool detected = false;
  tvm::Edm edm = tvm::Edm::kNone;
  std::uint64_t elapsed = 0;  // time units consumed by this iteration
  /// Detection latency: time units between the armed fault's injection and
  /// the detection (0 when not detected, or detected before injection).
  std::uint64_t detection_distance = 0;
};

class Target {
 public:
  virtual ~Target() = default;

  /// Restores the pristine post-load state and disarms any fault.
  virtual void reset() = 0;

  /// Runs one control iteration with inputs r, y.  If a fault is armed and
  /// its time falls inside this iteration, it is injected mid-iteration.
  virtual IterationOutcome iterate(float reference, float measurement) = 0;

  /// Arms a fault for the current run (call after reset()).
  virtual void arm(const Fault& fault) = 0;

  /// Size of the fault-location space in bits, and the boundary below which
  /// locations belong to the "Registers" partition (locations at or above
  /// it belong to "Cache"). Targets without a cache return register_bits ==
  /// fault_space_bits.
  virtual std::uint64_t fault_space_bits() const = 0;
  virtual std::uint64_t register_partition_bits() const = 0;

  /// Full observable state (scan chain + observable memory), used for the
  /// latent/overwritten distinction after a completed run.
  virtual std::vector<std::uint64_t> observable_state() const = 0;

  /// Watchdog: maximum time units one iteration may consume before the
  /// node's watchdog fires (set by the runner from the golden run).
  virtual void set_iteration_budget(std::uint64_t budget) = 0;

  /// Enables lightweight execution profiling (instruction mix, cache
  /// traffic, raw EDM trigger counts).  Off by default; enabling must not
  /// change any observable behaviour.  Targets without instrumentation
  /// ignore it.
  virtual void set_profiling(bool enabled) { (void)enabled; }

  /// Profile accumulated since profiling was enabled (across resets);
  /// all-zero when disabled or unsupported.
  virtual obs::TargetProfile profile() const { return {}; }

  /// Enables per-iteration detail capture (integrator state, assertion /
  /// recovery activity).  Off by default; like profiling, enabling it must
  /// not change any observable behaviour.  Targets without instrumentation
  /// ignore it.
  virtual void set_detail(bool enabled) { (void)enabled; }

  /// Detail facts for the most recent iterate() call; default-constructed
  /// when detail capture is disabled or unsupported.
  virtual IterationDetail iteration_detail() const { return {}; }

  /// Attaches a span track for causal tracing of target-internal phases
  /// (machine reset, injection); null detaches.  The runner re-points this
  /// per experiment so only sampled experiments trace.  Like profiling and
  /// detail, emitting spans must never change any observable behaviour.
  /// Targets without instrumentation ignore it.
  virtual void set_span_track(obs::SpanTrack* track) { (void)track; }

  /// Checkpoint/restore (PR 8).  A target that can snapshot and restore its
  /// complete execution state opts in by returning true here; the runner
  /// then captures checkpoints during the golden run and starts experiments
  /// from the nearest checkpoint at or before the injection time instead of
  /// replaying the whole fault-free prefix.  Targets that keep the default
  /// are simply run brute-force — correctness never depends on support.
  virtual bool supports_checkpoints() const { return false; }

  /// Snapshot of the full current state, valid to restore on any target
  /// instance of the same concrete type running the same program.  Called
  /// only at iteration boundaries of the golden run.  nullptr when
  /// unsupported.
  virtual std::shared_ptr<const TargetCheckpoint> capture_checkpoint() const {
    return nullptr;
  }

  /// Replaces the current state with `checkpoint` (disarming any fault);
  /// the caller re-arms and re-applies the iteration budget afterwards.
  virtual void restore_checkpoint(const TargetCheckpoint& checkpoint) {
    (void)checkpoint;
  }

  /// True when the target's complete state is bit-identical to `checkpoint`
  /// AND execution from here on is guaranteed to stay identical to the
  /// golden run's (no armed fault pending, no stuck-at re-forcing).  The
  /// runner uses this at golden checkpoint boundaries to end an experiment
  /// early: a reconverged machine produces the golden tail verbatim.
  /// Targets must return false whenever they cannot prove both conditions.
  virtual bool matches_checkpoint(const TargetCheckpoint& checkpoint) const {
    (void)checkpoint;
    return false;
  }

  /// Def/use touch recording for fault-space pruning: the runner fills
  /// `queries` with (bit, time) cells and replays the golden run; the
  /// target resolves each query's `next_touch` to the first dynamic time >=
  /// `time` at which that scan-chain bit is read or written (kNoNextTouch
  /// when never).  Returns false when unsupported (queries untouched — the
  /// runner then skips pruning).  `queries` must outlive the recording.
  virtual bool begin_touch_recording(std::vector<TouchQuery>* queries) {
    (void)queries;
    return false;
  }

  /// Stops touch recording and detaches from the query vector.
  virtual void end_touch_recording() {}
};

}  // namespace earl::fi
