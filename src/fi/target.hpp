// Target abstraction for fault-injection campaigns.
//
// GOOFI's architecture separates the campaign engine from the target system
// and the injection technique; the same separation lives here.  A Target is
// a controller implementation that the campaign runner drives one iteration
// at a time from the host-side environment simulator, with a fault armed to
// fire at a sampled point in the run:
//
//   TvmTarget    — SCIFI: the controller program executes on the TVM; the
//                  armed fault is injected through the scan chain at a
//                  dynamic-instruction boundary.
//   NativeTarget — SWIFI: the controller is native code; the armed fault is
//                  injected into the controller's state variables at an
//                  iteration boundary.
//
// Time base: iterate() reports how many "time units" elapsed (instructions
// for SCIFI, 1 per iteration for SWIFI).  The golden run's accumulated
// total defines the uniform time-sampling space, so campaign code is
// identical across techniques.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fi/fault_model.hpp"
#include "obs/profile.hpp"
#include "tvm/edm.hpp"

namespace earl::obs {
class SpanTrack;
}  // namespace earl::obs

namespace earl::fi {

/// Per-iteration facts captured only in detail mode (GOOFI's detail mode,
/// surfaced through obs::CampaignObserver::on_iteration).  All fields are
/// read-only views of state the iteration produced anyway — capturing them
/// must never change an experiment's outcome.
struct IterationDetail {
  float state = 0.0f;          // controller integrator state x after the step
  bool assertion_fired = false;  // an executable assertion took its bad path
  bool recovery_fired = false;   // ... and best-effort recovery ran
};

struct IterationOutcome {
  float output = 0.0f;
  bool detected = false;
  tvm::Edm edm = tvm::Edm::kNone;
  std::uint64_t elapsed = 0;  // time units consumed by this iteration
  /// Detection latency: time units between the armed fault's injection and
  /// the detection (0 when not detected, or detected before injection).
  std::uint64_t detection_distance = 0;
};

class Target {
 public:
  virtual ~Target() = default;

  /// Restores the pristine post-load state and disarms any fault.
  virtual void reset() = 0;

  /// Runs one control iteration with inputs r, y.  If a fault is armed and
  /// its time falls inside this iteration, it is injected mid-iteration.
  virtual IterationOutcome iterate(float reference, float measurement) = 0;

  /// Arms a fault for the current run (call after reset()).
  virtual void arm(const Fault& fault) = 0;

  /// Size of the fault-location space in bits, and the boundary below which
  /// locations belong to the "Registers" partition (locations at or above
  /// it belong to "Cache"). Targets without a cache return register_bits ==
  /// fault_space_bits.
  virtual std::uint64_t fault_space_bits() const = 0;
  virtual std::uint64_t register_partition_bits() const = 0;

  /// Full observable state (scan chain + observable memory), used for the
  /// latent/overwritten distinction after a completed run.
  virtual std::vector<std::uint64_t> observable_state() const = 0;

  /// Watchdog: maximum time units one iteration may consume before the
  /// node's watchdog fires (set by the runner from the golden run).
  virtual void set_iteration_budget(std::uint64_t budget) = 0;

  /// Enables lightweight execution profiling (instruction mix, cache
  /// traffic, raw EDM trigger counts).  Off by default; enabling must not
  /// change any observable behaviour.  Targets without instrumentation
  /// ignore it.
  virtual void set_profiling(bool enabled) { (void)enabled; }

  /// Profile accumulated since profiling was enabled (across resets);
  /// all-zero when disabled or unsupported.
  virtual obs::TargetProfile profile() const { return {}; }

  /// Enables per-iteration detail capture (integrator state, assertion /
  /// recovery activity).  Off by default; like profiling, enabling it must
  /// not change any observable behaviour.  Targets without instrumentation
  /// ignore it.
  virtual void set_detail(bool enabled) { (void)enabled; }

  /// Detail facts for the most recent iterate() call; default-constructed
  /// when detail capture is disabled or unsupported.
  virtual IterationDetail iteration_detail() const { return {}; }

  /// Attaches a span track for causal tracing of target-internal phases
  /// (machine reset, injection); null detaches.  The runner re-points this
  /// per experiment so only sampled experiments trace.  Like profiling and
  /// detail, emitting spans must never change any observable behaviour.
  /// Targets without instrumentation ignore it.
  virtual void set_span_track(obs::SpanTrack* track) { (void)track; }
};

}  // namespace earl::fi
