#include "fi/controller.hpp"

#include "obs/span.hpp"

namespace earl::fi {

const char* control_command_slug(ControlCommand command) {
  switch (command) {
    case ControlCommand::kPause: return "pause";
    case ControlCommand::kResume: return "resume";
    case ControlCommand::kStop: return "stop";
    case ControlCommand::kExtend: return "extend";
    case ControlCommand::kWorkers: return "workers";
  }
  return "unknown";
}

std::int64_t CampaignController::now() const {
  if (now_ns_) return now_ns_();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CampaignController::count_command(ControlCommand command) {
  commands_[static_cast<std::size_t>(command)].fetch_add(
      1, std::memory_order_relaxed);
}

void CampaignController::pause() {
  const obs::ScopedSpan span(
      span_track(), obs::SpanPhase::kControl,
      static_cast<std::uint64_t>(ControlCommand::kPause));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!paused_) {
      paused_ = true;
      pause_began_ns_ = now();
    }
  }
  count_command(ControlCommand::kPause);
  cv_.notify_all();
}

void CampaignController::resume() {
  const obs::ScopedSpan span(
      span_track(), obs::SpanPhase::kControl,
      static_cast<std::uint64_t>(ControlCommand::kResume));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (paused_) {
      paused_ = false;
      const std::int64_t delta = now() - pause_began_ns_;
      if (delta > 0) paused_ns_total_ += static_cast<std::uint64_t>(delta);
    }
  }
  count_command(ControlCommand::kResume);
  cv_.notify_all();
}

void CampaignController::stop() {
  // One relaxed store and nothing else: this is the async-signal-safe
  // path, so no mutex and no condvar notify.  Parked workers observe the
  // flag within kParkPollInterval; claiming workers observe it at the
  // next claim.
  stop_.store(true, std::memory_order_relaxed);
  count_command(ControlCommand::kStop);
}

std::size_t CampaignController::extend(std::size_t additional) {
  const obs::ScopedSpan span(
      span_track(), obs::SpanPhase::kControl,
      static_cast<std::uint64_t>(ControlCommand::kExtend));
  if (additional > 0 && !stop_requested()) {
    extra_.fetch_add(additional, std::memory_order_relaxed);
    count_command(ControlCommand::kExtend);
    cv_.notify_all();
  }
  return target_experiments();
}

void CampaignController::set_workers(std::size_t cap) {
  const obs::ScopedSpan span(
      span_track(), obs::SpanPhase::kControl,
      static_cast<std::uint64_t>(ControlCommand::kWorkers));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    worker_cap_ = cap;
  }
  count_command(ControlCommand::kWorkers);
  cv_.notify_all();
}

CampaignController::State CampaignController::state() const {
  if (stop_requested()) return State::kDraining;
  const std::lock_guard<std::mutex> lock(mutex_);
  return paused_ ? State::kPaused : State::kRunning;
}

const char* CampaignController::state_slug() const {
  switch (state()) {
    case State::kRunning: return "running";
    case State::kPaused: return "paused";
    case State::kDraining: return "draining";
  }
  return "running";
}

std::size_t CampaignController::target_experiments() const {
  return base_.load(std::memory_order_relaxed) +
         extra_.load(std::memory_order_relaxed);
}

std::size_t CampaignController::worker_cap() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return worker_cap_;
}

std::size_t CampaignController::parked_workers() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return parked_;
}

std::uint64_t CampaignController::paused_ns() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = paused_ns_total_;
  if (paused_) {
    const std::int64_t delta = now() - pause_began_ns_;
    if (delta > 0) total += static_cast<std::uint64_t>(delta);
  }
  return total;
}

std::uint64_t CampaignController::command_count(
    ControlCommand command) const {
  return commands_[static_cast<std::size_t>(command)].load(
      std::memory_order_relaxed);
}

void CampaignController::bind_base_experiments(std::size_t base) {
  base_.store(base, std::memory_order_relaxed);
}

bool CampaignController::wait_until_runnable(
    std::size_t worker, const std::atomic<bool>* abandon) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto runnable = [&] {
    return !paused_ && (worker_cap_ == 0 || worker < worker_cap_);
  };
  auto must_exit = [&] {
    return stop_requested() ||
           (abandon != nullptr && abandon->load(std::memory_order_relaxed));
  };
  if (!runnable() && !must_exit()) {
    ++parked_;
    // wait_for, not wait: stop() is notify-free (signal safety), so a
    // parked worker must re-check the stop flag on its own tick.
    while (!runnable() && !must_exit()) {
      cv_.wait_for(lock, kParkPollInterval);
    }
    --parked_;
  }
  return !must_exit();
}

void CampaignController::wake_parked() const { cv_.notify_all(); }

}  // namespace earl::fi
