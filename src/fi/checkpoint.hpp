// Golden-run checkpointing for fault-injection campaigns.
//
// SCIFI experiments are dominated by the fault-free prefix: every run
// replays the golden execution up to its sampled injection instruction
// before anything interesting happens (PR 7's phase report shows
// golden_replay eating most of the campaign wall time).  That prefix is
// identical across experiments by construction — the fault model's first
// observable effect IS the injection — so the runner snapshots the whole
// closed-loop state (target machine, engine, last sensor sample, elapsed
// time) at iteration boundaries during the golden run, and each experiment
// restores the nearest checkpoint at or before its injection time and
// replays only the residual prefix.
//
// Correctness argument: a checkpoint taken at iteration boundary k with
// cumulative time T is byte-identical to the state a from-reset replay
// reaches after k iterations (the golden run *is* that replay).  Restoring
// it and running iterations k..end with the same inputs therefore produces
// the same machine states, the same injection, and the same outcome —
// campaign results are bit-identical with checkpointing on or off, which
// the brute-force-vs-checkpointed test proves end to end.
//
// Checkpoints are immutable after the golden run completes; workers share
// them read-only (Target::restore_checkpoint copies out of the snapshot),
// so no synchronisation is needed on the store during the campaign.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "fi/target.hpp"
#include "plant/engine.hpp"

namespace earl::fi {

/// One golden-run snapshot at an iteration boundary: everything
/// run_closed_loop needs to resume as if it had executed iterations
/// [0, iteration) from reset.
struct Checkpoint {
  std::size_t iteration = 0;  // first iteration still to run
  std::uint64_t time = 0;     // time units retired before `iteration`
  std::uint64_t max_iteration_time = 0;  // prefix max (watchdog base)
  plant::Engine engine;       // host-side environment state
  float measurement = 0.0f;   // sensor sample feeding iteration `iteration`
  std::shared_ptr<const TargetCheckpoint> target;  // machine snapshot
};

/// Append-only store of golden-run checkpoints ordered by time; after the
/// golden run it is read-only and shared across workers.
class CheckpointStore {
 public:
  /// Appends a checkpoint; must be called in nondecreasing time order
  /// (the golden run naturally does).
  void add(Checkpoint checkpoint);

  bool empty() const { return checkpoints_.empty(); }
  std::size_t size() const { return checkpoints_.size(); }
  const Checkpoint& at(std::size_t index) const { return checkpoints_[index]; }

  /// The latest checkpoint whose time is <= `time`, or null when the store
  /// is empty or every checkpoint is later.  A campaign store always holds
  /// the iteration-0 checkpoint (time 0), so lookups never miss there.
  const Checkpoint* nearest(std::uint64_t time) const;

 private:
  std::vector<Checkpoint> checkpoints_;  // nondecreasing .time
};

}  // namespace earl::fi
