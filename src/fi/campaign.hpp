// Campaign configuration and per-experiment records.
//
// A campaign (paper Section 3.3) is: a target + workload, a fault model, a
// number of experiments, uniform sampling of fault locations over the
// selected partition and of injection times over the golden run, and a
// termination condition (detection, or 650 iterations).  Everything is
// derived deterministically from the seed, so a campaign can be reproduced
// exactly — the role GOOFI's SQL database plays for the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/classify.hpp"
#include "analysis/propagation_record.hpp"
#include "fi/fault_model.hpp"
#include "plant/engine.hpp"
#include "plant/signals.hpp"

namespace earl::fi {

enum class LocationFilter : std::uint8_t {
  kAll,            // whole scan chain (the paper's campaigns)
  kRegistersOnly,  // register partition
  kCacheOnly,      // cache partition
};

struct CampaignConfig {
  std::string name = "campaign";
  std::size_t experiments = 1000;
  std::uint64_t seed = 20010701;  // DSN 2001, Göteborg
  std::size_t iterations = plant::kIterations;
  FaultSpec fault;
  LocationFilter filter = LocationFilter::kAll;

  /// Watchdog: a faulty iteration may run this many times the longest
  /// golden iteration before the node watchdog fires.
  double watchdog_factor = 10.0;

  plant::EngineConfig engine;
  plant::SignalProfile signals;
  analysis::ClassifyConfig classify;

  /// Worker threads for the experiment loop (0 = hardware concurrency).
  std::size_t workers = 0;

  /// Checkpoint/restore injection: snapshot the golden run every N
  /// iterations and start each experiment from the nearest checkpoint at or
  /// before its injection time instead of replaying from reset (0 = off).
  /// Results are bit-identical either way; ignored in detail mode and on
  /// targets without checkpoint support.
  std::size_t checkpoint_interval = 0;

  /// Def/use fault-space pruning: collapse faults whose flipped bits share
  /// the same next touch on the golden trace into one executed
  /// representative per class, synthesizing the members' rows
  /// (bit-identical to running them; see fi/defuse.hpp).  Ignored for
  /// stuck-at faults, in detail mode, and on targets without touch
  /// recording.
  bool prune = false;
};

/// Result of the fault-free reference execution (Section 3.3.3: "a
/// reference execution of the workload is made, logging the fault-free
/// system state").
struct GoldenRun {
  std::vector<float> outputs;                 // u_lim(k)
  std::vector<std::uint64_t> final_state;     // observable state snapshot
  std::uint64_t total_time = 0;               // time-sampling space size
  std::uint64_t max_iteration_time = 0;       // watchdog base
};

struct ExperimentResult {
  std::uint64_t id = 0;
  Fault fault;
  bool cache_location = false;  // Cache vs Registers partition

  analysis::Outcome outcome = analysis::Outcome::kOverwritten;
  tvm::Edm edm = tvm::Edm::kNone;      // for detected outcomes
  std::size_t end_iteration = 0;       // iteration of detection / last run
  std::uint64_t detection_distance = 0;  // injection -> detection time units
  std::size_t first_strong = 0;        // deviation facts for diagnostics
  std::size_t strong_count = 0;
  double max_deviation = 0.0;

  /// Experiments this row stands for.  Always 1 in `experiments` (every
  /// sampled fault gets its own row, synthesized or executed); a def/use
  /// class size in the collapsed `representatives` view and in databases
  /// saved from it.  Analysis sums weights, so both views summarize
  /// identically.
  std::uint64_t weight = 1;

  /// Architectural propagation path, captured for value failures when the
  /// runner has a propagation prober attached (detail mode). The capture is
  /// a separate passive re-execution — it never influences the fields above.
  std::optional<analysis::PropagationRecord> propagation;
};

struct CampaignResult {
  CampaignConfig config;
  GoldenRun golden;
  std::vector<ExperimentResult> experiments;
  std::uint64_t fault_space_bits = 0;
  std::uint64_t register_partition_bits = 0;
  /// True when the runner's stop flag drained the campaign early:
  /// `experiments` then holds the completed prefix of the sampled faults.
  bool interrupted = false;

  /// Collapsed view when def/use pruning ran: one row per equivalence class
  /// within the completed prefix, each weighted by its class size.  Weights
  /// sum to experiments.size(); empty when pruning was off.
  std::vector<ExperimentResult> representatives;
  std::size_t prune_classes = 0;      // classes actually executed
  std::size_t prune_synthesized = 0;  // rows synthesized from a class rep

  std::size_t count(analysis::Outcome outcome) const;
  std::size_t value_failures() const;
  std::size_t severe_failures() const;
};

}  // namespace earl::fi
