#include "fi/native_target.hpp"

#include <cassert>

#include "util/bitops.hpp"

namespace earl::fi {

NativeTarget::NativeTarget(ControllerFactory factory)
    : factory_(std::move(factory)), controller_(factory_()) {
  assert(controller_ != nullptr);
}

void NativeTarget::reset() {
  controller_->reset();
  iteration_ = 0;
  armed_.reset();
  injected_ = false;
}

void NativeTarget::arm(const Fault& fault) {
  armed_ = fault;
  injected_ = false;
}

void NativeTarget::apply_fault_bits() {
  const std::span<float> state = controller_->state();
  for (const std::size_t bit : armed_->bits) {
    const std::size_t index = bit / 32;
    const unsigned offset = static_cast<unsigned>(bit % 32);
    if (index >= state.size()) continue;
    std::uint32_t word = util::float_to_bits(state[index]);
    switch (armed_->kind) {
      case FaultKind::kSingleBitFlip:
      case FaultKind::kMultiBitFlip:
        word = util::flip_bit32(word, offset);
        break;
      case FaultKind::kStuckAt0:
        word = util::set_bit32(word, offset, false);
        break;
      case FaultKind::kStuckAt1:
        word = util::set_bit32(word, offset, true);
        break;
    }
    state[index] = util::bits_to_float(word);
  }
}

IterationOutcome NativeTarget::iterate(float reference, float measurement) {
  if (armed_ && ((!injected_ && armed_->time == iteration_) ||
                 (injected_ && is_stuck_at(armed_->kind)))) {
    apply_fault_bits();
    injected_ = true;
  }
  const std::uint64_t recoveries_before =
      detail_ ? controller_->recovery_count() : 0;
  IterationOutcome outcome;
  outcome.output = controller_->step(reference, measurement);
  outcome.elapsed = 1;
  ++iteration_;
  if (detail_) {
    const std::span<float> state = controller_->state();
    last_detail_.state = state.empty() ? 0.0f : state[0];
    const bool recovered = controller_->recovery_count() > recoveries_before;
    last_detail_.assertion_fired = recovered;
    last_detail_.recovery_fired = recovered;
  }
  return outcome;
}

std::uint64_t NativeTarget::fault_space_bits() const {
  return controller_->state().size() * 32ull;
}

std::uint64_t NativeTarget::register_partition_bits() const {
  // The whole native state plays the role of data memory; there is no
  // separate register partition on this path.
  return 0;
}

std::vector<std::uint64_t> NativeTarget::observable_state() const {
  // const_cast is confined here: Controller::state() is non-const only
  // because injection needs mutable access; reading it does not mutate.
  auto& controller = const_cast<control::Controller&>(*controller_);
  const std::span<float> state = controller.state();
  std::vector<std::uint64_t> out;
  out.reserve(state.size() / 2 + 1);
  std::uint64_t pending = 0;
  bool half = false;
  for (const float value : state) {
    const std::uint32_t word = util::float_to_bits(value);
    if (!half) {
      pending = word;
      half = true;
    } else {
      out.push_back(pending | (static_cast<std::uint64_t>(word) << 32));
      half = false;
    }
  }
  if (half) out.push_back(pending);
  return out;
}

}  // namespace earl::fi
