// SCIFI target: a controller program running on the TVM, injected through
// the scan chain (paper Section 3.3: GOOFI + Thor).
//
// Protocol per experiment (matching Section 3.3.3):
//   * reset() restores ROM/RAM images, invalidates the cache and resets the
//     CPU — "reinitialising the target system and downloading the workload".
//   * The runner writes r(k), y(k) to the memory-mapped inputs and calls
//     iterate(); the CPU runs until YIELD (end of the iteration), pausing
//     once at the armed fault's dynamic-instruction index to flip the
//     selected scan-chain bit(s).
//   * A raised EDM stops the node (strong failure semantics) and surfaces
//     as detected=true; exceeding the iteration watchdog budget surfaces as
//     a WATCHDOG detection.
#pragma once

#include <utility>

#include "fi/target.hpp"
#include "tvm/assembler.hpp"
#include "tvm/cpu.hpp"
#include "tvm/scan_chain.hpp"

namespace earl::fi {

class TvmTarget : public Target {
 public:
  /// The program must already have assembled cleanly (asserted).
  explicit TvmTarget(const tvm::AssembledProgram& program,
                     tvm::CacheConfig cache_config = {});
  ~TvmTarget() override;

  // The CPU's profile hook points at a member, so the target must not move.
  TvmTarget(const TvmTarget&) = delete;
  TvmTarget& operator=(const TvmTarget&) = delete;

  void reset() override;
  IterationOutcome iterate(float reference, float measurement) override;
  void arm(const Fault& fault) override;
  std::uint64_t fault_space_bits() const override;
  std::uint64_t register_partition_bits() const override;
  std::vector<std::uint64_t> observable_state() const override;
  void set_iteration_budget(std::uint64_t budget) override;
  void set_profiling(bool enabled) override;
  obs::TargetProfile profile() const override;
  void set_detail(bool enabled) override;
  IterationDetail iteration_detail() const override;
  void set_span_track(obs::SpanTrack* track) override { span_track_ = track; }

  // Checkpoint/restore injection (see fi/checkpoint.hpp): a snapshot is a
  // full Machine copy plus the retired-instruction count, so restoring is
  // byte-identical to replaying the golden prefix from reset.
  bool supports_checkpoints() const override { return true; }
  std::shared_ptr<const TargetCheckpoint> capture_checkpoint() const override;
  void restore_checkpoint(const TargetCheckpoint& checkpoint) override;
  bool matches_checkpoint(const TargetCheckpoint& checkpoint) const override;

  // Def/use touch recording (see fi/defuse.hpp): attaches a trace sink that
  // maps every operand each retired instruction reads or writes to its
  // scan-chain element and resolves the pending next-touch queries.  Cache
  // accesses touch the whole (direct-mapped) line they index — a sound
  // superset.
  bool begin_touch_recording(std::vector<TouchQuery>* queries) override;
  void end_touch_recording() override;

  /// Scan-chain access for directed experiments (e.g. the Figure 10 bench
  /// corrupts the state variable to a chosen in-range value).
  tvm::Machine& machine() { return machine_; }
  const tvm::ScanChain& scan_chain() const { return scan_; }

  /// Locates the flat scan-chain bit range [first, first+32) of the cache
  /// word currently holding data-RAM address `addr`, if resident. Used by
  /// directed benches and tests.
  std::optional<std::size_t> cache_bit_of_address(std::uint32_t addr) const;

 private:
  struct Snapshot;       // TargetCheckpoint: Machine copy + executed count
  struct TouchRecorder;  // def/use trace sink (defined in the .cpp)

  void apply_fault_bits();
  void accumulate_cache_stats();
  /// The detail-mode sink when detail capture is active, else null; used
  /// wherever the CPU's trace sink must be (re)established.
  tvm::TraceSink* detail_sink();
  /// Reads a data-RAM word through the cache (the cached copy wins when the
  /// line is resident, so a dirty integrator value is seen). Side-effect
  /// free: uses DataCache::probe + raw accessors only.
  std::uint32_t peek_data_word(std::uint32_t addr) const;

  /// Detail-mode trace sink: flags when execution enters one of the
  /// generated assertion bad-path regions (see detail_regions_).
  struct DetailProbe final : tvm::TraceSink {
    TvmTarget* owner = nullptr;
    void on_step(const tvm::CpuState& before, std::uint32_t word) override;
  };

  tvm::Machine machine_;
  tvm::ScanChain scan_;
  std::uint32_t entry_;
  std::uint64_t executed_ = 0;
  std::uint64_t iteration_budget_ = 1u << 20;
  std::optional<Fault> armed_;
  bool injected_ = false;

  // Span tracing (see Target::set_span_track): reset and the injection
  // point emit nested spans onto the attached track.
  obs::SpanTrack* span_track_ = nullptr;

  // Profiling state (see Target::set_profiling).  Cache stats are cleared
  // by Machine::reset, so reset() folds them into profile_ first; the
  // instruction mix accumulates directly through the CPU's hook.
  bool profiling_ = false;
  tvm::ExecProfile exec_profile_;
  obs::TargetProfile profile_;

  // Detail-mode state (see Target::set_detail).  Regions are [bad, done)
  // code-address ranges of the generated assertion bad paths, resolved from
  // the program's `state_bad_*`/`out_bad_*` labels at construction; the
  // probe marks the iteration when the PC enters one.  state_addr_ is the
  // data address of the controller's first state variable (`state0`).
  bool detail_ = false;
  bool assertion_seen_ = false;
  bool recovery_available_ = false;
  DetailProbe detail_probe_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> detail_regions_;
  std::optional<std::uint32_t> state_addr_;

  // Live only between begin_touch_recording and end_touch_recording.
  std::unique_ptr<TouchRecorder> recorder_;
};

}  // namespace earl::fi
