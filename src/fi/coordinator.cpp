#include "fi/coordinator.hpp"

#include <algorithm>

#include "fi/workloads.hpp"
#include "obs/json.hpp"
#include "tvm/cpu.hpp"

namespace earl::fi {

namespace {

std::string_view shard_state_slug(CampaignCoordinator::ShardState state) {
  switch (state) {
    case CampaignCoordinator::ShardState::kPending: return "pending";
    case CampaignCoordinator::ShardState::kLeased: return "leased";
    case CampaignCoordinator::ShardState::kDone: return "done";
  }
  return "unknown";
}

/// The same element naming the single-node live observer and the offline
/// report use, so fleet aggregation diffs clean against both.
analysis::BitResolver spec_resolver(const CampaignSpec& spec) {
  if (spec.technique == "swifi") return analysis::swifi_resolver();
  tvm::CacheConfig cache;
  cache.parity_enabled = spec.parity;
  return analysis::scan_chain_resolver(cache);
}

std::optional<std::uint64_t> json_u64(const obs::JsonValue* value) {
  if (value == nullptr || !value->is_number()) return std::nullopt;
  if (value->number < 0) return std::nullopt;
  return static_cast<std::uint64_t>(value->number);
}

}  // namespace

std::string CampaignSpec::to_json() const {
  obs::JsonObject doc;
  doc.field("workload", workload);
  doc.field("technique", technique);
  doc.field("fault", fault);
  doc.field("filter", filter);
  doc.field("experiments", static_cast<std::uint64_t>(experiments));
  doc.field("seed", seed);
  doc.field("parity", parity);
  doc.field("checkpoint_interval",
            static_cast<std::uint64_t>(checkpoint_interval));
  doc.field("prune", prune);
  return std::move(doc).str();
}

std::optional<CampaignSpec> CampaignSpec::from_json(
    const obs::JsonValue& doc) {
  if (!doc.is_object()) return std::nullopt;
  CampaignSpec spec;
  const obs::JsonValue* workload = doc.find("workload");
  const obs::JsonValue* technique = doc.find("technique");
  if (workload == nullptr || !workload->is_string() || technique == nullptr ||
      !technique->is_string()) {
    return std::nullopt;
  }
  spec.workload = workload->string;
  spec.technique = technique->string;
  if (const obs::JsonValue* fault = doc.find("fault");
      fault != nullptr && fault->is_string()) {
    spec.fault = fault->string;
  }
  if (const obs::JsonValue* filter = doc.find("filter");
      filter != nullptr && filter->is_string()) {
    spec.filter = filter->string;
  }
  const std::optional<std::uint64_t> experiments =
      json_u64(doc.find("experiments"));
  const std::optional<std::uint64_t> seed = json_u64(doc.find("seed"));
  if (!experiments || !seed) return std::nullopt;
  spec.experiments = static_cast<std::size_t>(*experiments);
  spec.seed = *seed;
  if (const obs::JsonValue* parity = doc.find("parity");
      parity != nullptr && parity->kind == obs::JsonValue::Kind::kBool) {
    spec.parity = parity->boolean;
  }
  if (const std::optional<std::uint64_t> interval =
          json_u64(doc.find("checkpoint_interval"))) {
    spec.checkpoint_interval = static_cast<std::size_t>(*interval);
  }
  if (const obs::JsonValue* prune = doc.find("prune");
      prune != nullptr && prune->kind == obs::JsonValue::Kind::kBool) {
    spec.prune = prune->boolean;
  }
  return spec;
}

std::optional<CampaignConfig> CampaignSpec::to_config(
    std::string* error) const {
  CampaignConfig config = table2_campaign(1.0);
  config.name = name();
  config.experiments = experiments;
  config.seed = seed;
  config.checkpoint_interval = checkpoint_interval;
  config.prune = prune;
  if (fault == "single") {
    config.fault.kind = FaultKind::kSingleBitFlip;
  } else if (fault == "multi2") {
    config.fault.kind = FaultKind::kMultiBitFlip;
    config.fault.multiplicity = 2;
  } else if (fault == "multi4") {
    config.fault.kind = FaultKind::kMultiBitFlip;
    config.fault.multiplicity = 4;
  } else if (fault == "stuck0") {
    config.fault.kind = FaultKind::kStuckAt0;
  } else if (fault == "stuck1") {
    config.fault.kind = FaultKind::kStuckAt1;
  } else {
    if (error != nullptr) *error = "unknown fault model '" + fault + "'";
    return std::nullopt;
  }
  if (filter == "all") {
    config.filter = LocationFilter::kAll;
  } else if (filter == "cache") {
    config.filter = LocationFilter::kCacheOnly;
  } else if (filter == "registers") {
    config.filter = LocationFilter::kRegistersOnly;
  } else {
    if (error != nullptr) *error = "unknown filter '" + filter + "'";
    return std::nullopt;
  }
  return config;
}

CampaignCoordinator::CampaignCoordinator(Options options)
    : options_(std::move(options)),
      criticality_(analysis::CriticalityConfig{},
                   spec_resolver(options_.spec)) {
  criticality_.set_campaign(options_.spec.name());
  // Never more shards than experiments (an empty shard would complete
  // instantly and skew the plan for no benefit).
  const std::size_t experiments = options_.spec.experiments;
  std::size_t shards = std::max<std::size_t>(1, options_.shards);
  shards = std::min(shards, std::max<std::size_t>(1, experiments));
  const std::size_t base = experiments / shards;
  const std::size_t remainder = experiments % shards;
  shards_.resize(shards);
  std::size_t first = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    shards_[i].first = first;
    shards_[i].count = base + (i < remainder ? 1 : 0);
    first += shards_[i].count;
  }
}

std::int64_t CampaignCoordinator::now() const {
  if (options_.now_ns) return options_.now_ns();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CampaignCoordinator::expire_stale_locked() {
  const std::int64_t t = now();
  for (Shard& shard : shards_) {
    if (shard.state == ShardState::kLeased && t >= shard.deadline_ns) {
      shard.state = ShardState::kPending;
      ++reassignments_;
    }
  }
}

bool CampaignCoordinator::complete_locked() const {
  for (const Shard& shard : shards_) {
    if (shard.state != ShardState::kDone) return false;
  }
  return true;
}

std::size_t CampaignCoordinator::done_experiments_locked() const {
  std::size_t done = 0;
  for (const Shard& shard : shards_) {
    if (shard.state == ShardState::kDone) {
      done += shard.count;
    } else if (shard.state == ShardState::kLeased) {
      done += static_cast<std::size_t>(
          std::min<std::uint64_t>(shard.completed, shard.count));
    }
  }
  return done;
}

std::size_t CampaignCoordinator::shard_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shards_.size();
}

std::size_t CampaignCoordinator::shard_first(std::size_t shard) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shard < shards_.size() ? shards_[shard].first : 0;
}

std::size_t CampaignCoordinator::shard_size(std::size_t shard) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shard < shards_.size() ? shards_[shard].count : 0;
}

CampaignCoordinator::Lease CampaignCoordinator::lease(
    const std::string& worker) {
  const std::lock_guard<std::mutex> lock(mutex_);
  expire_stale_locked();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    if (shard.state != ShardState::kPending) continue;
    shard.state = ShardState::kLeased;
    shard.token = ++next_token_;
    shard.worker = worker;
    shard.deadline_ns = now() + options_.lease_timeout_ns;
    shard.completed = 0;
    Lease granted;
    granted.status = Lease::Status::kGranted;
    granted.shard = i;
    granted.first = shard.first;
    granted.count = shard.count;
    granted.token = shard.token;
    return granted;
  }
  Lease idle;
  idle.status = complete_locked() ? Lease::Status::kComplete
                                  : Lease::Status::kWait;
  return idle;
}

CampaignCoordinator::HeartbeatReply CampaignCoordinator::heartbeat(
    std::size_t shard_index, std::uint64_t token, std::uint64_t completed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  expire_stale_locked();
  HeartbeatReply reply;
  if (shard_index >= shards_.size()) return reply;
  reply.known = true;
  Shard& shard = shards_[shard_index];
  if (shard.state == ShardState::kLeased && shard.token == token) {
    shard.deadline_ns = now() + options_.lease_timeout_ns;
    shard.completed = completed;
    reply.ok = true;
    reply.state = "leased";
    return reply;
  }
  // Expired-and-reassigned, never-leased, or already-done: the sender no
  // longer holds this shard and should stop working on it.
  reply.ok = false;
  reply.state =
      shard.state == ShardState::kDone ? "done" : std::string("lost");
  return reply;
}

CampaignCoordinator::SubmitReply CampaignCoordinator::submit(
    std::size_t shard_index, std::uint64_t token, const std::string& csv) {
  std::unique_lock<std::mutex> lock(mutex_);
  expire_stale_locked();
  SubmitReply reply;
  if (shard_index >= shards_.size()) {
    reply.error = "unknown shard index";
    return reply;
  }
  Shard& shard = shards_[shard_index];
  if (shard.state == ShardState::kDone) {
    // Deterministic data: a second copy adds nothing and conflicts with
    // nothing.  (token deliberately unchecked — see header.)
    reply.accepted = true;
    reply.duplicate = true;
    reply.complete = complete_locked();
    return reply;
  }
  (void)token;
  const std::optional<ResultDatabase> db = ResultDatabase::from_csv(csv);
  if (!db) {
    reply.error = "body is not a result-database CSV";
    return reply;
  }
  if (db->skipped_rows() > 0) {
    reply.error = "shard database has malformed rows";
    return reply;
  }
  if (db->campaign_name() != options_.spec.name() ||
      db->seed() != options_.spec.seed) {
    reply.error = "shard campaign/seed does not match the coordinated spec";
    return reply;
  }
  if (db->size() != shard.count) {
    reply.error = "expected " + std::to_string(shard.count) +
                  " rows for shard " + std::to_string(shard_index) + ", got " +
                  std::to_string(db->size());
    return reply;
  }
  const std::vector<ExperimentResult>& rows = db->all();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].id != shard.first + i) {
      reply.error = "shard rows are not the contiguous id range [" +
                    std::to_string(shard.first) + ", " +
                    std::to_string(shard.first + shard.count) + ")";
      return reply;
    }
  }
  if (total_time_ != 0 && db->total_time() != total_time_) {
    // Every shard recomputes the same golden run; a mismatch means a
    // worker ran a different workload build.
    reply.error = "shard golden time-space disagrees with earlier shards";
    return reply;
  }
  if (total_time_ == 0) {
    total_time_ = db->total_time();
    criticality_.set_time_space(total_time_);
  }
  shard.rows = rows;
  shard.state = ShardState::kDone;
  for (const ExperimentResult& row : shard.rows) criticality_.add(row);
  reply.accepted = true;
  reply.complete = complete_locked();
  std::size_t remaining = 0;
  for (const Shard& s : shards_) {
    if (s.state != ShardState::kDone) ++remaining;
  }
  reply.remaining = remaining;
  lock.unlock();
  done_cv_.notify_all();
  return reply;
}

bool CampaignCoordinator::complete() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return complete_locked();
}

bool CampaignCoordinator::wait_complete_for(
    std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mutex_);
  return done_cv_.wait_for(lock, timeout,
                           [this] { return complete_locked(); });
}

std::optional<ResultDatabase> CampaignCoordinator::merged() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!complete_locked()) return std::nullopt;
  ResultDatabase db(options_.spec.name(), options_.spec.seed);
  db.set_total_time(total_time_);
  for (const Shard& shard : shards_) {
    for (const ExperimentResult& row : shard.rows) db.insert(row);
  }
  return db;
}

std::uint64_t CampaignCoordinator::reassignments() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return reassignments_;
}

std::string CampaignCoordinator::progress_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t pending = 0;
  std::size_t leased = 0;
  std::size_t done = 0;
  for (const Shard& shard : shards_) {
    switch (shard.state) {
      case ShardState::kPending: ++pending; break;
      case ShardState::kLeased: ++leased; break;
      case ShardState::kDone: ++done; break;
    }
  }
  obs::JsonObject doc;
  doc.field("schema", "earl.fleet.v1");
  doc.field("campaign", options_.spec.name());
  doc.field("state", complete_locked()
                         ? "done"
                         : (leased > 0 ? "running" : "waiting"));
  obs::JsonObject experiments;
  experiments.field("total",
                    static_cast<std::uint64_t>(options_.spec.experiments));
  experiments.field("done",
                    static_cast<std::uint64_t>(done_experiments_locked()));
  doc.raw_field("experiments", std::move(experiments).str());
  obs::JsonObject shards;
  shards.field("total", static_cast<std::uint64_t>(shards_.size()));
  shards.field("pending", static_cast<std::uint64_t>(pending));
  shards.field("leased", static_cast<std::uint64_t>(leased));
  shards.field("done", static_cast<std::uint64_t>(done));
  doc.raw_field("shards", std::move(shards).str());
  doc.field("workers", static_cast<std::uint64_t>(leased));
  doc.field("reassignments", reassignments_);
  return std::move(doc).str() + "\n";
}

std::string CampaignCoordinator::metrics_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t by_state[3] = {0, 0, 0};
  for (const Shard& shard : shards_) {
    ++by_state[static_cast<std::size_t>(shard.state)];
  }
  std::string out;
  out += "# HELP earl_coord_shards Campaign shards by lease state.\n";
  out += "# TYPE earl_coord_shards gauge\n";
  for (const ShardState state :
       {ShardState::kPending, ShardState::kLeased, ShardState::kDone}) {
    out += "earl_coord_shards{state=\"" +
           std::string(shard_state_slug(state)) + "\"} " +
           std::to_string(by_state[static_cast<std::size_t>(state)]) + "\n";
  }
  out += "# HELP earl_coord_experiments_total Experiments in the "
         "coordinated campaign.\n";
  out += "# TYPE earl_coord_experiments_total gauge\n";
  out += "earl_coord_experiments_total " +
         std::to_string(options_.spec.experiments) + "\n";
  out += "# HELP earl_coord_experiments_done Experiments finished across "
         "the fleet (done shards + heartbeat progress).\n";
  out += "# TYPE earl_coord_experiments_done gauge\n";
  out += "earl_coord_experiments_done " +
         std::to_string(done_experiments_locked()) + "\n";
  out += "# HELP earl_coord_lease_reassignments_total Leases expired and "
         "returned to pending.\n";
  out += "# TYPE earl_coord_lease_reassignments_total counter\n";
  out += "earl_coord_lease_reassignments_total " +
         std::to_string(reassignments_) + "\n";
  out += "# HELP earl_coord_complete 1 once every shard is merged.\n";
  out += "# TYPE earl_coord_complete gauge\n";
  out += std::string("earl_coord_complete ") +
         (complete_locked() ? "1" : "0") + "\n";
  return out;
}

std::string CampaignCoordinator::criticality_json(std::size_t top_k) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return criticality_.to_json(top_k);
}

std::string CampaignCoordinator::criticality_element_json(
    std::string_view element) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return criticality_.element_json(element);
}

}  // namespace earl::fi
