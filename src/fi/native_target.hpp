// SWIFI target: pre-runtime software-implemented fault injection into the
// state variables of a native controller.
//
// GOOFI supports SWIFI alongside SCIFI (Section 3.3.1); here it serves as a
// fast cross-check that the Algorithm I/II comparison is not an artefact of
// the CPU simulator: bits are flipped directly in the controller's
// persistent state (the float variables that survive between iterations) at
// an iteration boundary.  There are no hardware EDMs on this path, so every
// effective error becomes a value failure — which is exactly the population
// the executable assertions must handle.
//
// Time base: one time unit per iteration.
#pragma once

#include <functional>
#include <memory>

#include "control/controller.hpp"
#include "fi/target.hpp"

namespace earl::fi {

class NativeTarget : public Target {
 public:
  using ControllerFactory =
      std::function<std::unique_ptr<control::Controller>()>;

  explicit NativeTarget(ControllerFactory factory);

  void reset() override;
  IterationOutcome iterate(float reference, float measurement) override;
  void arm(const Fault& fault) override;
  std::uint64_t fault_space_bits() const override;
  std::uint64_t register_partition_bits() const override;
  std::vector<std::uint64_t> observable_state() const override;
  void set_iteration_budget(std::uint64_t budget) override {
    (void)budget;  // no watchdog on the native path
  }
  void set_detail(bool enabled) override { detail_ = enabled; }
  IterationDetail iteration_detail() const override { return last_detail_; }

  control::Controller& controller() { return *controller_; }

 private:
  void apply_fault_bits();

  ControllerFactory factory_;
  std::unique_ptr<control::Controller> controller_;
  std::uint64_t iteration_ = 0;
  std::optional<Fault> armed_;
  bool injected_ = false;

  // Detail mode: the native assertion path and the recovery path are the
  // same code, so one Controller::recovery_count() delta per step drives
  // both flags.
  bool detail_ = false;
  IterationDetail last_detail_;
};

}  // namespace earl::fi
