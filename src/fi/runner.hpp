// Campaign runner: golden run, fault sampling, experiment execution,
// classification (paper Section 3.3.3 fault-injection phase + Section 4.1
// classification, fused so experiments store compact outcomes).
//
// Experiments are fully deterministic: fault parameters derive from the
// campaign seed alone (not from execution order), each experiment runs a
// private target + engine, and classification compares against the shared
// golden run.  Re-running any experiment id reproduces it exactly — which
// is how the exemplar benches (Figures 7-9) recover full output traces for
// interesting experiments without the campaign storing 650 floats each.
//
// Telemetry: run() accepts an optional obs::CampaignObserver that is
// notified of campaign lifecycle events and per-experiment completions
// (from worker threads — see obs/observer.hpp for the threading contract).
// Observation is passive: results are bit-identical with and without an
// observer attached.
//
// Detail mode (GOOFI): when the observer opts in via wants_iterations(),
// the runner switches every target into detail capture and streams one
// obs::IterationRecord per output-producing iteration; a propagation
// prober, when attached, additionally re-executes each value failure on a
// private machine to record its architectural propagation path.  Both are
// passive — the experiment outcomes stay bit-identical.
// Control plane: run() polls an optional fi::CampaignController at the
// experiment claim point — pause/resume park workers on a condvar, stop
// drains gracefully, extend(n) grows the fault list by continuing the
// seed-derived sampling stream (so an extended campaign is bit-identical
// to one configured larger from the start), and set_workers(n) soft-caps
// the active workers.  Every command preserves the invariant that the
// completed experiments form a contiguous prefix [0, N) of the campaign.
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "fi/campaign.hpp"
#include "fi/checkpoint.hpp"
#include "fi/controller.hpp"
#include "fi/target.hpp"
#include "obs/observer.hpp"
#include "plant/environment.hpp"

namespace earl::obs {
class Counter;
class MetricsRegistry;
class SpanTracer;
class SpanTrack;
}  // namespace earl::obs

namespace earl::fi {

using TargetFactory = std::function<std::unique_ptr<Target>()>;

/// Watchdog budget scaling in integer fixed point: floor(time * factor)
/// with 16 fractional bits for the factor, computed in 128-bit so budgets
/// above 2^53 time units stay exact (a double round-trip silently rounds
/// them), saturating at UINT64_MAX and never returning less than 1.
std::uint64_t scaled_watchdog_budget(std::uint64_t max_iteration_time,
                                     double factor);

class CampaignRunner {
 public:
  /// Computes the architectural propagation record for a sampled fault, on
  /// an execution entirely private to the prober (never on a campaign
  /// target).  Returns nullopt when the capture is unsupported for the
  /// fault or target kind.  Must be thread-safe: value failures from
  /// several workers probe concurrently.
  using PropagationProber =
      std::function<std::optional<analysis::PropagationRecord>(const Fault&)>;

  explicit CampaignRunner(CampaignConfig config) : config_(std::move(config)) {}

  /// Attaches a propagation prober, invoked once per value-failure
  /// experiment after classification (see make_tvm_propagation_prober in
  /// workloads.hpp for the SCIFI implementation).
  void set_propagation_prober(PropagationProber prober) {
    prober_ = std::move(prober);
  }

  /// Attaches the campaign control mailbox (pause/resume/stop/extend/
  /// set_workers — see fi/controller.hpp).  The controller must outlive
  /// run().  Polled only between experiments, so control commands never
  /// perturb an experiment in flight.
  void set_controller(CampaignController* controller) {
    controller_ = controller;
  }

  /// Attaches a metrics registry for hot-path self-observability: run()
  /// records every experiment-claim (queue mutex + fault sampling) into
  /// the `earl.claim_latency_ns` histogram, the series the campaign-
  /// scaling bench and later perf PRs regress against.  The registry must
  /// outlive run().  Purely additive — experiment results are unaffected.
  void set_metrics(obs::MetricsRegistry* registry) { metrics_ = registry; }

  /// Attaches a span tracer for causal timing: run() emits one span per
  /// lifecycle phase of every sampled experiment (claim, setup,
  /// golden-replay, inject, post-inject run, classify, probe, store) onto
  /// a per-worker track, plus campaign-level golden-run/fault-sampling
  /// spans (see obs/span.hpp).  The tracer must outlive run().  Passive by
  /// contract: results are bit-identical with and without a tracer, and
  /// with the tracer detached the hot path costs one pointer test per
  /// phase.
  void set_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }

  /// Runs golden + all experiments. The factory is called once per worker.
  /// `observer`, when non-null, receives lifecycle + per-experiment events.
  CampaignResult run(const TargetFactory& factory,
                     obs::CampaignObserver* observer = nullptr) const;

  /// Runs only the contiguous shard [first, first+count) of the campaign's
  /// deterministic fault stream — the distributed-campaign entry point.
  /// The golden run and the fault samples for [0, first) are recomputed
  /// locally (both derive from the config alone), so a shard needs nothing
  /// but (first, count) to reproduce its slice: result.experiments holds
  /// the shard's rows with absolute ids, and concatenating every shard's
  /// rows in order is bit-identical to a single run() — the same guarantee
  /// controller extend(n) proves for the tail.  Checkpoint restore and
  /// def/use pruning stay active (pruning collapses within the shard
  /// only).  A sharded run ignores controller extensions;
  /// result.config.experiments reports the full-campaign total.
  /// run(f, o) == run_range(f, o, 0, config().experiments).
  CampaignResult run_range(const TargetFactory& factory,
                           obs::CampaignObserver* observer,
                           std::size_t first, std::size_t count) const;

  /// Reference execution only (also useful for Figure 3/4/5 traces).
  /// `observer`, when non-null and iteration-hungry, receives golden-run
  /// IterationRecords (experiment == obs::kGoldenExperimentId) on worker 0.
  /// `capture`, when non-null, collects a checkpoint at every
  /// checkpoint_interval iteration boundary (iteration 0 included), which
  /// run() hands to experiments for restore-instead-of-replay injection.
  GoldenRun run_golden(Target& target,
                       obs::CampaignObserver* observer = nullptr,
                       CheckpointStore* capture = nullptr) const;

  /// Re-runs a single already-sampled fault and returns the full output
  /// series (truncated at the detection point when detected early).
  std::vector<float> replay_outputs(Target& target, const Fault& fault,
                                    const GoldenRun& golden) const;

  /// The deterministic fault list for this campaign against a target with
  /// the given fault space (exposed for tests).
  std::vector<Fault> sample_faults(std::uint64_t fault_space_bits,
                                   std::uint64_t register_bits,
                                   std::uint64_t time_space) const;

  const CampaignConfig& config() const { return config_; }

 private:
  /// One closed-loop execution of the workload: reset, arm (when `fault` is
  /// non-null), then step target + engine until detection or the configured
  /// iteration count.  The single stepping loop shared by the golden run,
  /// experiments and replays.
  struct ClosedLoop {
    std::vector<float> outputs;
    bool detected = false;
    tvm::Edm edm = tvm::Edm::kNone;
    std::uint64_t detection_distance = 0;
    std::size_t end_iteration = 0;
    std::uint64_t total_time = 0;          // summed iteration time units
    std::uint64_t max_iteration_time = 0;  // watchdog base
    /// The run ended early at a golden checkpoint boundary it had provably
    /// reconverged to (see LoopCheckpoints::converge): the outputs hold the
    /// golden tail verbatim and the final machine state is known to equal
    /// the golden run's without executing the remainder.
    bool converged = false;
  };
  /// Detail-mode sink for run_closed_loop: where to send IterationRecords
  /// and what to compare outputs against. Null tap = no per-iteration work.
  struct IterationTap;
  /// Checkpoint hooks for run_closed_loop.  `capture` (golden run only):
  /// snapshot the full closed-loop state at every checkpoint_interval
  /// iteration boundary.  `resume` (experiments): restore that state
  /// instead of resetting, prefill the skipped iterations' outputs from
  /// `golden_outputs` (bit-identical to replaying them — the golden run is
  /// that replay), and run only the residual iterations.
  /// `converge` (experiments): at every golden checkpoint boundary past the
  /// injection point, test whether the run has reconverged to the golden
  /// execution (all outputs so far bit-equal and the target's state
  /// bit-equal to the golden snapshot); if so, the remaining iterations are
  /// provably identical to the golden tail, which is copied in verbatim and
  /// the run ends early.
  struct LoopCheckpoints {
    CheckpointStore* capture = nullptr;
    const Checkpoint* resume = nullptr;
    const std::vector<float>* golden_outputs = nullptr;
    const CheckpointStore* converge = nullptr;
    obs::Counter* converge_exits = nullptr;  // bumped on each early exit
  };
  /// `track`, when non-null, receives setup and golden-replay/post-inject
  /// spans; the replay/post-inject boundary is located by the iteration
  /// whose cumulative time units cross the fault's injection time (one
  /// integer compare per iteration when traced, nothing when not).  On a
  /// resumed run the phases become checkpoint_restore / residual_replay.
  ClosedLoop run_closed_loop(Target& target, const Fault* fault,
                             std::uint64_t iteration_budget,
                             const IterationTap* tap = nullptr,
                             obs::SpanTrack* track = nullptr,
                             const LoopCheckpoints* checkpoints = nullptr)
      const;

  /// Watchdog budget for faulty runs, derived from the golden run.
  std::uint64_t watchdog_budget(const GoldenRun& golden) const;

  /// The [lo, hi) location range the configured LocationFilter admits.
  struct LocationBounds {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };
  LocationBounds location_bounds(std::uint64_t fault_space_bits,
                                 std::uint64_t register_bits) const;

  /// `resume`, when non-null, starts the experiment from that golden-run
  /// checkpoint (its time must be <= fault.time) instead of from reset.
  /// `converge`, when non-null, enables reconvergence early exit against
  /// the golden checkpoint store (see LoopCheckpoints::converge); only
  /// valid when the watchdog budget is at least the golden max iteration
  /// time, else a synthesized tail could mask a watchdog trip.
  ExperimentResult run_experiment(Target& target, const Fault& fault,
                                  std::uint64_t id, const GoldenRun& golden,
                                  std::uint64_t register_bits,
                                  obs::CampaignObserver* observer = nullptr,
                                  std::size_t worker = 0,
                                  obs::SpanTrack* track = nullptr,
                                  const Checkpoint* resume = nullptr,
                                  const CheckpointStore* converge = nullptr,
                                  obs::Counter* converge_exits =
                                      nullptr) const;

  bool stop_requested() const {
    return controller_ != nullptr && controller_->stop_requested();
  }

  CampaignConfig config_;
  PropagationProber prober_;
  CampaignController* controller_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::SpanTracer* tracer_ = nullptr;
};

}  // namespace earl::fi
