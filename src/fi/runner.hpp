// Campaign runner: golden run, fault sampling, experiment execution,
// classification (paper Section 3.3.3 fault-injection phase + Section 4.1
// classification, fused so experiments store compact outcomes).
//
// Experiments are fully deterministic: fault parameters derive from the
// campaign seed alone (not from execution order), each experiment runs a
// private target + engine, and classification compares against the shared
// golden run.  Re-running any experiment id reproduces it exactly — which
// is how the exemplar benches (Figures 7-9) recover full output traces for
// interesting experiments without the campaign storing 650 floats each.
#pragma once

#include <functional>
#include <memory>

#include "fi/campaign.hpp"
#include "fi/target.hpp"
#include "plant/environment.hpp"

namespace earl::fi {

using TargetFactory = std::function<std::unique_ptr<Target>()>;

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config) : config_(std::move(config)) {}

  /// Runs golden + all experiments. The factory is called once per worker.
  CampaignResult run(const TargetFactory& factory) const;

  /// Reference execution only (also useful for Figure 3/4/5 traces).
  GoldenRun run_golden(Target& target) const;

  /// Re-runs a single already-sampled fault and returns the full output
  /// series (zero-padded from the detection point when detected early).
  std::vector<float> replay_outputs(Target& target, const Fault& fault,
                                    const GoldenRun& golden) const;

  /// The deterministic fault list for this campaign against a target with
  /// the given fault space (exposed for tests).
  std::vector<Fault> sample_faults(std::uint64_t fault_space_bits,
                                   std::uint64_t register_bits,
                                   std::uint64_t time_space) const;

  const CampaignConfig& config() const { return config_; }

 private:
  ExperimentResult run_experiment(Target& target, const Fault& fault,
                                  std::uint64_t id,
                                  const GoldenRun& golden) const;

  CampaignConfig config_;
};

}  // namespace earl::fi
