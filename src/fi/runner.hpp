// Campaign runner: golden run, fault sampling, experiment execution,
// classification (paper Section 3.3.3 fault-injection phase + Section 4.1
// classification, fused so experiments store compact outcomes).
//
// Experiments are fully deterministic: fault parameters derive from the
// campaign seed alone (not from execution order), each experiment runs a
// private target + engine, and classification compares against the shared
// golden run.  Re-running any experiment id reproduces it exactly — which
// is how the exemplar benches (Figures 7-9) recover full output traces for
// interesting experiments without the campaign storing 650 floats each.
//
// Telemetry: run() accepts an optional obs::CampaignObserver that is
// notified of campaign lifecycle events and per-experiment completions
// (from worker threads — see obs/observer.hpp for the threading contract).
// Observation is passive: results are bit-identical with and without an
// observer attached.
#pragma once

#include <functional>
#include <memory>

#include "fi/campaign.hpp"
#include "fi/target.hpp"
#include "obs/observer.hpp"
#include "plant/environment.hpp"

namespace earl::fi {

using TargetFactory = std::function<std::unique_ptr<Target>()>;

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config) : config_(std::move(config)) {}

  /// Runs golden + all experiments. The factory is called once per worker.
  /// `observer`, when non-null, receives lifecycle + per-experiment events.
  CampaignResult run(const TargetFactory& factory,
                     obs::CampaignObserver* observer = nullptr) const;

  /// Reference execution only (also useful for Figure 3/4/5 traces).
  GoldenRun run_golden(Target& target) const;

  /// Re-runs a single already-sampled fault and returns the full output
  /// series (truncated at the detection point when detected early).
  std::vector<float> replay_outputs(Target& target, const Fault& fault,
                                    const GoldenRun& golden) const;

  /// The deterministic fault list for this campaign against a target with
  /// the given fault space (exposed for tests).
  std::vector<Fault> sample_faults(std::uint64_t fault_space_bits,
                                   std::uint64_t register_bits,
                                   std::uint64_t time_space) const;

  const CampaignConfig& config() const { return config_; }

 private:
  /// One closed-loop execution of the workload: reset, arm (when `fault` is
  /// non-null), then step target + engine until detection or the configured
  /// iteration count.  The single stepping loop shared by the golden run,
  /// experiments and replays.
  struct ClosedLoop {
    std::vector<float> outputs;
    bool detected = false;
    tvm::Edm edm = tvm::Edm::kNone;
    std::uint64_t detection_distance = 0;
    std::size_t end_iteration = 0;
    std::uint64_t total_time = 0;          // summed iteration time units
    std::uint64_t max_iteration_time = 0;  // watchdog base
  };
  ClosedLoop run_closed_loop(Target& target, const Fault* fault,
                             std::uint64_t iteration_budget) const;

  /// Watchdog budget for faulty runs, derived from the golden run.
  std::uint64_t watchdog_budget(const GoldenRun& golden) const;

  ExperimentResult run_experiment(Target& target, const Fault& fault,
                                  std::uint64_t id, const GoldenRun& golden,
                                  std::uint64_t register_bits) const;

  CampaignConfig config_;
};

}  // namespace earl::fi
