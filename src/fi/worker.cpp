#include "fi/worker.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "fi/controller.hpp"
#include "fi/coordinator.hpp"
#include "fi/database.hpp"
#include "fi/runner.hpp"
#include "fi/workloads.hpp"
#include "obs/http.hpp"
#include "obs/json.hpp"
#include "obs/observer.hpp"

namespace earl::fi {

namespace {

/// Counts completed experiments for the heartbeat's progress report.
class ShardProgressObserver : public obs::CampaignObserver {
 public:
  void on_experiment_done(std::size_t worker, const ExperimentResult& result,
                          std::uint64_t wall_ns) override {
    (void)worker;
    (void)result;
    (void)wall_ns;
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
};

std::optional<obs::HttpGetResult> rpc(const WorkerOptions& options,
                                      const std::string& method,
                                      const std::string& target,
                                      const std::string& body,
                                      const std::string& content_type = "") {
  obs::HttpClientRequest request;
  request.host = options.host;
  request.port = options.port;
  request.method = method;
  request.target = target;
  request.body = body;
  if (!content_type.empty()) {
    request.headers.emplace_back("Content-Type", content_type);
  }
  if (!options.token.empty()) {
    request.headers.emplace_back("Authorization",
                                 "Bearer " + options.token);
  }
  return obs::http_request(request);
}

/// First line of an error envelope's detail (or the raw body) for
/// human-readable failure reports.
std::string error_detail(const std::string& body) {
  if (const std::optional<obs::JsonValue> doc = obs::json_parse(body)) {
    if (const obs::JsonValue* detail = doc->find("detail");
        detail != nullptr && detail->is_string()) {
      return detail->string;
    }
  }
  std::string line = body;
  if (const std::size_t eol = line.find('\n'); eol != std::string::npos) {
    line.resize(eol);
  }
  return line;
}

}  // namespace

std::string handshake_error(const std::string& version_body) {
  std::string parse_error;
  const std::optional<obs::JsonValue> doc =
      obs::json_parse(version_body, &parse_error);
  if (!doc || !doc->is_object()) {
    return "version document is not JSON (" + parse_error + ")";
  }
  const obs::JsonValue* api = doc->find("api_version");
  if (api == nullptr || !api->is_number() || api->number != 1.0) {
    return "coordinator speaks an incompatible api_version (need 1)";
  }
  const obs::JsonValue* shard = doc->find("shard_protocol");
  if (shard == nullptr || !shard->is_number() || shard->number != 1.0) {
    return "coordinator speaks an incompatible shard_protocol (need 1)";
  }
  const obs::JsonValue* capabilities = doc->find("capabilities");
  if (capabilities != nullptr && capabilities->is_array()) {
    for (const obs::JsonValue& capability : capabilities->array) {
      if (capability.is_string() && capability.string == "coordinator") {
        return "";
      }
    }
  }
  return "server has no campaign coordinator attached "
         "(start it with earl-goofi --coordinate N)";
}

WorkerReport run_worker(const WorkerOptions& options) {
  using std::chrono::milliseconds;
  WorkerReport report;
  const auto log = [&](const std::string& line) {
    if (options.log) options.log(line);
  };
  const auto stopping = [&] {
    return options.should_stop && options.should_stop();
  };
  const std::string where =
      options.host + ":" + std::to_string(options.port);

  const std::optional<obs::HttpGetResult> version =
      rpc(options, "GET", "/api/v1/version", "");
  if (!version || version->status != 200) {
    report.error = "cannot reach coordinator at " + where;
    return report;
  }
  if (std::string mismatch = handshake_error(version->body);
      !mismatch.empty()) {
    report.error = std::move(mismatch);
    return report;
  }

  int lease_failures = 0;
  for (;;) {
    if (stopping()) {
      report.ok = true;
      return report;
    }
    const std::optional<obs::HttpGetResult> lease = rpc(
        options, "POST", "/api/v1/shard/lease?worker=" + options.name, "");
    if (!lease) {
      // Transient: the coordinator may be restarting its listener.  Give
      // up only after a sustained outage.
      if (++lease_failures >= 50) {
        report.error = "lost contact with coordinator at " + where;
        return report;
      }
      std::this_thread::sleep_for(milliseconds(options.poll_ms));
      continue;
    }
    lease_failures = 0;
    if (lease->status == 401) {
      report.error =
          "coordinator rejected the bearer token (--serve-token mismatch)";
      return report;
    }
    if (lease->status != 200) {
      report.error = "lease request failed: " + error_detail(lease->body);
      return report;
    }
    const std::optional<obs::JsonValue> doc = obs::json_parse(lease->body);
    const obs::JsonValue* status =
        doc && doc->is_object() ? doc->find("status") : nullptr;
    if (status == nullptr || !status->is_string()) {
      report.error = "lease reply is not a shard grant document";
      return report;
    }
    if (status->string == "complete") {
      report.ok = true;
      return report;
    }
    if (status->string == "wait") {
      std::this_thread::sleep_for(milliseconds(options.poll_ms));
      continue;
    }
    const obs::JsonValue* shard_v = doc->find("shard");
    const obs::JsonValue* first_v = doc->find("first");
    const obs::JsonValue* count_v = doc->find("count");
    const obs::JsonValue* token_v = doc->find("token");
    const obs::JsonValue* heartbeat_v = doc->find("heartbeat_s");
    const obs::JsonValue* campaign_v = doc->find("campaign");
    if (status->string != "granted" || shard_v == nullptr ||
        !shard_v->is_number() || first_v == nullptr ||
        !first_v->is_number() || count_v == nullptr ||
        !count_v->is_number() || token_v == nullptr ||
        !token_v->is_number() || campaign_v == nullptr) {
      report.error = "lease reply is not a shard grant document";
      return report;
    }
    const std::size_t shard = static_cast<std::size_t>(shard_v->number);
    const std::size_t first = static_cast<std::size_t>(first_v->number);
    const std::size_t count = static_cast<std::size_t>(count_v->number);
    const std::uint64_t token = static_cast<std::uint64_t>(token_v->number);
    const std::int64_t heartbeat_ms =
        heartbeat_v != nullptr && heartbeat_v->is_number() &&
                heartbeat_v->number >= 1.0
            ? static_cast<std::int64_t>(heartbeat_v->number * 1000.0) / 2
            : 2500;

    const std::optional<CampaignSpec> spec =
        CampaignSpec::from_json(*campaign_v);
    if (!spec) {
      report.error = "lease grant carried an unreadable campaign spec";
      return report;
    }
    std::string spec_error;
    std::optional<CampaignConfig> config = spec->to_config(&spec_error);
    if (!config) {
      report.error = spec_error;
      return report;
    }
    config->workers = options.threads;
    std::string factory_error;
    const TargetFactory factory = make_campaign_factory(
        spec->technique, spec->workload, spec->parity, &factory_error);
    if (!factory) {
      report.error = factory_error;
      return report;
    }

    log("leased shard " + std::to_string(shard) + " [" +
        std::to_string(first) + ", " + std::to_string(first + count) + ")");

    CampaignRunner runner(*config);
    CampaignController controller;
    runner.set_controller(&controller);
    ShardProgressObserver progress;
    const std::string shard_query = "shard=" + std::to_string(shard) +
                                    "&token=" + std::to_string(token);

    // The heartbeat thread keeps the lease alive at half the advertised
    // cadence and forwards two stop signals into the run: the caller's
    // should_stop, and a "lost"/"done" heartbeat reply (the coordinator
    // reassigned the shard — finishing it would be wasted work).
    std::atomic<bool> run_done{false};
    std::atomic<bool> lease_lost{false};
    std::thread heartbeat([&] {
      std::int64_t since_ms = 0;
      while (!run_done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(milliseconds(100));
        since_ms += 100;
        if (stopping()) controller.stop();
        if (since_ms < heartbeat_ms) continue;
        since_ms = 0;
        const std::optional<obs::HttpGetResult> beat =
            rpc(options, "POST",
                "/api/v1/shard/heartbeat?" + shard_query +
                    "&completed=" + std::to_string(progress.count()),
                "");
        if (!beat || beat->status != 200) continue;  // lease timeout backstops
        const std::optional<obs::JsonValue> reply = obs::json_parse(beat->body);
        const obs::JsonValue* ok =
            reply && reply->is_object() ? reply->find("ok") : nullptr;
        if (ok != nullptr && ok->kind == obs::JsonValue::Kind::kBool &&
            !ok->boolean) {
          lease_lost.store(true, std::memory_order_release);
          controller.stop();
        }
      }
    });
    const CampaignResult result =
        runner.run_range(factory, &progress, first, count);
    run_done.store(true, std::memory_order_release);
    heartbeat.join();

    if (lease_lost.load(std::memory_order_acquire)) {
      log("lease for shard " + std::to_string(shard) +
          " expired; abandoning it");
      continue;
    }
    if (result.interrupted) {
      // Only a stop request interrupts a sharded run (extensions are
      // disabled); a partial shard is never submitted.
      report.ok = stopping();
      if (!report.ok) {
        report.error = "shard run stopped before completing";
      }
      return report;
    }

    ResultDatabase db(config->name, config->seed);
    db.set_total_time(result.golden.total_time);
    for (const ExperimentResult& row : result.experiments) db.insert(row);
    const std::string csv = db.to_csv();

    bool submitted = false;
    bool campaign_complete = false;
    for (int attempt = 0; attempt < 10; ++attempt) {
      const std::optional<obs::HttpGetResult> reply =
          rpc(options, "POST", "/api/v1/shard/result?" + shard_query, csv,
              "text/csv");
      if (!reply) {
        std::this_thread::sleep_for(milliseconds(options.poll_ms));
        continue;
      }
      if (reply->status == 200) {
        submitted = true;
        const std::optional<obs::JsonValue> accepted =
            obs::json_parse(reply->body);
        const obs::JsonValue* complete =
            accepted && accepted->is_object() ? accepted->find("complete")
                                              : nullptr;
        campaign_complete = complete != nullptr &&
                            complete->kind == obs::JsonValue::Kind::kBool &&
                            complete->boolean;
        break;
      }
      report.error = "coordinator rejected shard " + std::to_string(shard) +
                     ": " + error_detail(reply->body);
      return report;
    }
    if (!submitted) {
      report.error = "could not deliver shard " + std::to_string(shard) +
                     " to coordinator at " + where;
      return report;
    }
    ++report.shards_run;
    report.experiments += count;
    log("shard " + std::to_string(shard) + " submitted (" +
        std::to_string(count) + " experiments)");
    if (campaign_complete) {
      // This submit finished the campaign; the coordinator may exit before
      // another lease poll would answer, so don't race it.
      report.ok = true;
      return report;
    }
  }
}

}  // namespace earl::fi
