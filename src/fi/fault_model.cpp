#include "fi/fault_model.hpp"

#include <algorithm>
#include <cstdio>

namespace earl::fi {

std::string Fault::to_string() const {
  std::string out;
  switch (kind) {
    case FaultKind::kSingleBitFlip: out = "flip"; break;
    case FaultKind::kMultiBitFlip: out = "multiflip"; break;
    case FaultKind::kStuckAt0: out = "stuck0"; break;
    case FaultKind::kStuckAt1: out = "stuck1"; break;
  }
  out += " @t=" + std::to_string(time) + " bits=[";
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(bits[i]);
  }
  out += "]";
  return out;
}

Fault sample_fault(const FaultSpec& spec, std::uint64_t location_lo,
                   std::uint64_t location_hi, std::uint64_t time_space,
                   util::Rng& rng) {
  Fault fault;
  fault.kind = spec.kind;
  fault.time = time_space == 0 ? 0 : rng.below(time_space);
  const std::uint64_t span = location_hi - location_lo;
  const unsigned count =
      spec.kind == FaultKind::kMultiBitFlip ? std::max(1u, spec.multiplicity)
                                            : 1u;
  fault.bits.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    std::size_t bit = 0;
    do {
      bit = static_cast<std::size_t>(location_lo + rng.below(span));
    } while (std::find(fault.bits.begin(), fault.bits.end(), bit) !=
             fault.bits.end());
    fault.bits.push_back(bit);
  }
  return fault;
}

}  // namespace earl::fi
