// Distributed campaign worker (the `earl-goofi --worker` engine).
//
// Connects to a CampaignCoordinator exposed through obs::TelemetryServer,
// performs the /api/v1/version compatibility handshake, then loops: lease
// a shard, rebuild the campaign locally from the coordinator's
// CampaignSpec, run it with CampaignRunner::run_range (checkpoint/prune
// and the rest of the single-node accelerations intact), and POST the
// shard's ResultDatabase CSV back.  A heartbeat thread keeps the lease
// alive; a "lost" heartbeat reply (lease expired and reassigned) stops the
// in-flight run and abandons the shard — its rows will come from whoever
// holds the new lease, bit-identical by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace earl::fi {

/// Inspects a GET /api/v1/version body and decides whether this worker
/// can speak to the server: it must be API v1, shard protocol 1, and
/// advertise the "coordinator" capability.  Returns "" when compatible,
/// else a one-line reason (the handshake-mismatch rejection message).
std::string handshake_error(const std::string& version_body);

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Bearer token for the shard RPCs (the coordinator's --serve-token).
  std::string token;
  /// Name reported in lease requests (diagnostics only).
  std::string name = "worker";
  /// Campaign worker threads for the local shard run (0 = hardware).
  std::size_t threads = 0;
  /// Poll cadence while the coordinator has no pending shard.
  int poll_ms = 200;
  /// Cooperative stop (SIGINT): checked between shards and forwarded to
  /// the in-flight run's controller.
  std::function<bool()> should_stop;
  /// When non-null, one-line progress messages are appended here (the CLI
  /// prints them; tests leave it unset).
  std::function<void(const std::string&)> log;
};

struct WorkerReport {
  bool ok = false;
  std::size_t shards_run = 0;
  std::size_t experiments = 0;
  /// Non-empty when ok is false: connect/handshake/protocol failure.
  std::string error;
};

/// Runs the worker loop until the coordinator reports the campaign
/// complete (ok), should_stop fires (ok, possibly with shards abandoned),
/// or a protocol error occurs (not ok, error set).
WorkerReport run_worker(const WorkerOptions& options);

}  // namespace earl::fi
