// Result database (the GOOFI SQL-database substitute).
//
// Stores experiment records with typed query helpers and round-trips to
// CSV, so the analysis phase can run — and re-run — without repeating the
// campaign.  One row per experiment; campaign metadata in a side header.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fi/campaign.hpp"

namespace earl::fi {

class ResultDatabase {
 public:
  ResultDatabase() = default;
  explicit ResultDatabase(const CampaignResult& campaign);
  /// Metadata-only construction for streaming fills (obs::DatabaseObserver
  /// inserts experiments as workers complete them).
  ResultDatabase(std::string campaign_name, std::uint64_t seed)
      : campaign_name_(std::move(campaign_name)), seed_(seed) {}

  void insert(const ExperimentResult& experiment);

  const std::vector<ExperimentResult>& all() const { return experiments_; }
  std::size_t size() const { return experiments_.size(); }

  /// Queries (predicates compose in the caller; these cover the table
  /// dimensions of the paper).
  std::vector<ExperimentResult> by_outcome(analysis::Outcome outcome) const;
  std::vector<ExperimentResult> by_partition(bool cache_location) const;
  std::vector<ExperimentResult> by_edm(tvm::Edm edm) const;

  /// First experiment matching an outcome, if any (exemplar lookup).
  std::optional<ExperimentResult> first_of(analysis::Outcome outcome) const;

  /// CSV persistence. save() returns false on I/O error.  load() returns
  /// nullopt when the file cannot be read or is not a result database
  /// (wrong/missing header) — distinct from an engaged database with zero
  /// rows, which is what a valid empty campaign loads as.  Files saved
  /// before the detection_distance column (PR 3), the weight column
  /// (PR 8) or the total_time column still load, with the distance
  /// defaulting to 0, the weight to 1 and the total time to 0.  Rows with
  /// the wrong column count or an out-of-range enum value are skipped and
  /// counted, never cast blindly.
  bool save(const std::string& path) const;
  static std::optional<ResultDatabase> load(const std::string& path);

  /// In-memory form of the same byte format save()/load() use on disk —
  /// what a shard worker ships to the coordinator over HTTP and what the
  /// coordinator validates before merging.  save(p) writes exactly
  /// to_csv(); from_csv(to_csv()) round-trips.
  std::string to_csv() const;
  static std::optional<ResultDatabase> from_csv(const std::string& text);

  /// Rows load() rejected (wrong column count, malformed or out-of-range
  /// enum field); 0 for databases built in memory.
  std::size_t skipped_rows() const { return skipped_rows_; }

  const std::string& campaign_name() const { return campaign_name_; }
  std::uint64_t seed() const { return seed_; }

  /// The golden run's injection-time sampling space, persisted so offline
  /// analysis buckets fault times exactly like the live campaign did.  0
  /// for databases saved before the column existed (and for streaming
  /// databases until the golden run completes).
  std::uint64_t total_time() const { return total_time_; }
  void set_total_time(std::uint64_t total_time) { total_time_ = total_time; }

 private:
  /// Shared decode path for load()/from_csv(): header sniffing (current,
  /// v3, v2, legacy) + per-row bounded enum parsing.
  static std::optional<ResultDatabase> from_rows(
      const std::vector<std::vector<std::string>>& rows);

  std::string campaign_name_;
  std::uint64_t seed_ = 0;
  std::uint64_t total_time_ = 0;
  std::vector<ExperimentResult> experiments_;
  std::size_t skipped_rows_ = 0;
};

}  // namespace earl::fi
