#include "fi/campaign.hpp"

namespace earl::fi {

std::size_t CampaignResult::count(analysis::Outcome outcome) const {
  std::size_t n = 0;
  for (const ExperimentResult& e : experiments) {
    if (e.outcome == outcome) ++n;
  }
  return n;
}

std::size_t CampaignResult::value_failures() const {
  std::size_t n = 0;
  for (const ExperimentResult& e : experiments) {
    if (analysis::is_value_failure(e.outcome)) ++n;
  }
  return n;
}

std::size_t CampaignResult::severe_failures() const {
  std::size_t n = 0;
  for (const ExperimentResult& e : experiments) {
    if (analysis::is_severe(e.outcome)) ++n;
  }
  return n;
}

}  // namespace earl::fi
