#include "fi/campaign.hpp"

namespace earl::fi {

// Weighted counts: expanded rows all carry weight 1, so these stay plain
// tallies there, while a collapsed (pruned) row stands for its whole
// def/use class.
std::size_t CampaignResult::count(analysis::Outcome outcome) const {
  std::size_t n = 0;
  for (const ExperimentResult& e : experiments) {
    if (e.outcome == outcome) n += static_cast<std::size_t>(e.weight);
  }
  return n;
}

std::size_t CampaignResult::value_failures() const {
  std::size_t n = 0;
  for (const ExperimentResult& e : experiments) {
    if (analysis::is_value_failure(e.outcome)) {
      n += static_cast<std::size_t>(e.weight);
    }
  }
  return n;
}

std::size_t CampaignResult::severe_failures() const {
  std::size_t n = 0;
  for (const ExperimentResult& e : experiments) {
    if (analysis::is_severe(e.outcome)) n += static_cast<std::size_t>(e.weight);
  }
  return n;
}

}  // namespace earl::fi
