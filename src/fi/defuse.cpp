#include "fi/defuse.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

namespace earl::fi {

std::vector<TouchQuery> make_touch_queries(const std::vector<Fault>& faults) {
  std::size_t total = 0;
  for (const Fault& fault : faults) total += fault.bits.size();
  std::vector<TouchQuery> queries;
  queries.reserve(total);
  for (const Fault& fault : faults) {
    for (const std::size_t bit : fault.bits) {
      TouchQuery query;
      query.bit = bit;
      query.time = fault.time;
      queries.push_back(query);
    }
  }
  return queries;
}

PrunePlan build_prune_plan(const std::vector<Fault>& faults,
                           const std::vector<TouchQuery>& queries) {
  PrunePlan plan;
  plan.rep.resize(faults.size());
  plan.untouched.assign(faults.size(), 0);

  // Class key: the sorted (bit, next_touch) pairs of one fault.  Sorting
  // makes the key independent of bit enumeration order; an ordered map
  // keeps the grouping deterministic.
  using Key = std::vector<std::pair<std::size_t, std::uint64_t>>;
  std::map<Key, std::size_t> first_with_key;

  std::size_t cursor = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const std::size_t bits = faults[i].bits.size();
    assert(cursor + bits <= queries.size());
    Key key;
    key.reserve(bits);
    bool never_touched = bits > 0;
    for (std::size_t b = 0; b < bits; ++b) {
      const TouchQuery& query = queries[cursor + b];
      key.emplace_back(query.bit, query.next_touch);
      if (query.next_touch != kNoNextTouch) never_touched = false;
    }
    cursor += bits;
    plan.untouched[i] = never_touched ? 1 : 0;
    std::sort(key.begin(), key.end());
    const auto [it, inserted] = first_with_key.emplace(std::move(key), i);
    plan.rep[i] = it->second;
  }
  assert(cursor == queries.size());

  plan.classes = first_with_key.size();
  plan.synthesized = faults.size() - plan.classes;
  return plan;
}

}  // namespace earl::fi
