#include "fi/workloads.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "codegen/emitter.hpp"
#include "core/robust_pi.hpp"
#include "fi/native_target.hpp"

namespace earl::fi {

control::PiConfig paper_pi_config() {
  control::PiConfig config;
  config.kp = 0.02f;
  config.ki = 0.012f;
  config.dt = 0.0154f;
  config.u_min = 0.0f;
  config.u_max = 70.0f;
  // Equilibrium throttle for the initial 2000 rpm operating point with the
  // default engine gain of 300 rpm/deg.
  config.x_init = 2000.0f / 300.0f;
  return config;
}

tvm::AssembledProgram build_pi_program(const control::PiConfig& config,
                                       codegen::RobustnessMode mode) {
  const codegen::Diagram diagram = codegen::make_pi_diagram(config);
  const codegen::EmitResult emitted =
      codegen::emit_assembly(diagram, codegen::make_pi_options(config, mode));
  // The PI pipeline is exercised by tests for every mode; a failure here is
  // a programming error that must be loud even in release builds (assert()
  // vanishes under NDEBUG).
  if (!emitted.ok()) {
    std::fprintf(stderr, "build_pi_program: emit failed: %s\n",
                 emitted.errors.front().c_str());
    std::abort();
  }
  tvm::AssembledProgram program = tvm::assemble(emitted.assembly);
  if (!program.ok()) {
    std::fprintf(stderr, "build_pi_program: assembly failed: %s\n",
                 program.errors.front().c_str());
    std::abort();
  }
  return program;
}

TargetFactory make_tvm_pi_factory(const control::PiConfig& config,
                                  codegen::RobustnessMode mode,
                                  tvm::CacheConfig cache_config) {
  // Assemble once; every target construction loads the shared image.
  auto program =
      std::make_shared<tvm::AssembledProgram>(build_pi_program(config, mode));
  return [program, cache_config]() -> std::unique_ptr<Target> {
    return std::make_unique<TvmTarget>(*program, cache_config);
  };
}

CampaignRunner::PropagationProber make_tvm_propagation_prober(
    std::shared_ptr<const tvm::AssembledProgram> program,
    analysis::PropagationOptions options) {
  assert(program != nullptr && program->ok());
  return [program = std::move(program),
          options](const Fault& fault)
             -> std::optional<analysis::PropagationRecord> {
    return analysis::analyze_propagation(*program, fault, options).record();
  };
}

TargetFactory make_native_pi_factory(const control::PiConfig& config,
                                     bool robust) {
  return [config, robust]() -> std::unique_ptr<Target> {
    return std::make_unique<NativeTarget>(
        [config, robust]() -> std::unique_ptr<control::Controller> {
          if (robust) return std::make_unique<core::RobustPiController>(config);
          return std::make_unique<control::PiController>(config);
        });
  };
}

TargetFactory make_campaign_factory(const std::string& technique,
                                    const std::string& workload, bool parity,
                                    std::string* error) {
  const control::PiConfig pi = paper_pi_config();
  if (technique == "swifi") {
    if (workload == "alg1") return make_native_pi_factory(pi, false);
    if (workload == "alg2") return make_native_pi_factory(pi, true);
    if (error != nullptr) *error = "swifi supports workloads alg1 | alg2";
    return nullptr;
  }
  if (technique != "scifi") {
    if (error != nullptr) *error = "unknown technique '" + technique + "'";
    return nullptr;
  }
  tvm::CacheConfig cache;
  cache.parity_enabled = parity;
  if (workload == "alg1") {
    return make_tvm_pi_factory(pi, codegen::RobustnessMode::kNone, cache);
  }
  if (workload == "alg2") {
    return make_tvm_pi_factory(pi, codegen::RobustnessMode::kRecover, cache);
  }
  if (workload == "trap") {
    return make_tvm_pi_factory(pi, codegen::RobustnessMode::kTrap, cache);
  }
  if (workload == "alg2rate") {
    const codegen::EmitResult emitted = codegen::emit_assembly(
        codegen::make_pi_diagram(pi), codegen::make_pi_options_with_rate(pi));
    auto program =
        std::make_shared<tvm::AssembledProgram>(tvm::assemble(emitted.assembly));
    return [program, cache]() -> std::unique_ptr<Target> {
      return std::make_unique<TvmTarget>(*program, cache);
    };
  }
  if (error != nullptr) *error = "unknown workload '" + workload + "'";
  return nullptr;
}

namespace {

CampaignConfig base_campaign() {
  CampaignConfig config;
  config.iterations = plant::kIterations;
  config.fault.kind = FaultKind::kSingleBitFlip;
  config.filter = LocationFilter::kAll;
  return config;
}

std::size_t scaled(std::size_t n, double scale) {
  const double s = std::clamp(scale, 0.0001, 1.0);
  return std::max<std::size_t>(10, static_cast<std::size_t>(n * s));
}

}  // namespace

CampaignConfig table2_campaign(double scale) {
  CampaignConfig config = base_campaign();
  config.name = "table2_algorithm1";
  config.experiments = scaled(9290, scale);
  config.seed = 20010701;
  return config;
}

CampaignConfig table3_campaign(double scale) {
  CampaignConfig config = base_campaign();
  config.name = "table3_algorithm2";
  config.experiments = scaled(2372, scale);
  config.seed = 20010702;
  return config;
}

double campaign_scale_from_env() {
  const char* value = std::getenv("EARL_CAMPAIGN_SCALE");
  if (value == nullptr) return 1.0;
  const double scale = std::atof(value);
  return scale > 0.0 && scale <= 1.0 ? scale : 1.0;
}

}  // namespace earl::fi
