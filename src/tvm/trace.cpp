#include "tvm/trace.hpp"

#include <cstdio>

#include "tvm/isa.hpp"

namespace earl::tvm {

void ExecutionTrace::on_step(const CpuState& before, std::uint32_t word) {
  TraceRecord rec;
  rec.pc = before.pc;
  rec.word = word;
  if (capture_registers_) rec.regs = before.regs;
  records_.push_back(rec);
}

std::string ExecutionTrace::to_listing(std::size_t max_records) const {
  std::string out;
  const std::size_t n = max_records == 0
                            ? records_.size()
                            : std::min(max_records, records_.size());
  for (std::size_t i = 0; i < n; ++i) {
    char head[40];
    std::snprintf(head, sizeof head, "%6zu  %08x  ", i, records_[i].pc);
    out += head;
    out += disassemble(records_[i].word);
    out.push_back('\n');
  }
  if (n < records_.size()) {
    out += "  ... (" + std::to_string(records_.size() - n) + " more)\n";
  }
  return out;
}

std::vector<unsigned> RegisterDiff::registers() const {
  std::vector<unsigned> out;
  for (unsigned r = 0; r < kNumRegs; ++r) {
    if ((mask >> r) & 1u) out.push_back(r);
  }
  return out;
}

std::string RegisterDiff::to_string() const {
  if (empty()) return "-";
  std::string out;
  for (const unsigned r : registers()) {
    if (!out.empty()) out.push_back(' ');
    out += "r" + std::to_string(r);
  }
  return out;
}

RegisterDiff register_diff(const std::array<std::uint32_t, kNumRegs>& golden,
                           const std::array<std::uint32_t, kNumRegs>& faulty) {
  RegisterDiff diff;
  for (unsigned r = 0; r < kNumRegs; ++r) {
    if (golden[r] != faulty[r]) diff.mask |= 1u << r;
  }
  return diff;
}

RegisterDiff register_diff_at(const ExecutionTrace& golden,
                              const ExecutionTrace& faulty,
                              std::size_t index) {
  if (index >= golden.records().size() || index >= faulty.records().size()) {
    return {};
  }
  return register_diff(golden.records()[index].regs,
                       faulty.records()[index].regs);
}

std::size_t first_divergence(const ExecutionTrace& golden,
                             const ExecutionTrace& faulty) {
  const auto& a = golden.records();
  const auto& b = faulty.records();
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].pc != b[i].pc || a[i].word != b[i].word ||
        a[i].regs != b[i].regs) {
      return i;
    }
  }
  if (a.size() != b.size()) return n;
  return static_cast<std::size_t>(-1);
}

}  // namespace earl::tvm
