// Two-pass assembler for the TVM ISA.
//
// This is the bottom half of the "Real-Time Workshop" substitute: the block
// code generator (codegen/emitter.hpp) emits assembly text, and this
// assembler turns it into a loadable image.  It is also used directly by
// tests and by hand-written workloads.
//
// Syntax
//   ; or # start a comment.
//   label:            defines a symbol at the current location counter.
//   .text / .data     switch sections (code defaults first).
//   .word N | sym     emit a 32-bit word in the current section.
//   .float F          emit an IEEE-754 single constant.
//   .space N          reserve N bytes (word multiple) of zeros.
//   .equ name, value  define an absolute symbol.
//   .entry label      set the program entry point (default: first code word).
//   .sigcheck         emit a control-flow signature check (SIG) whose
//                     expected value the assembler computes over the
//                     instructions emitted since the previous .sigcheck or
//                     label (control transfers excluded, matching the CPU).
//
// Signature discipline (for code that uses .sigcheck): control may only be
// transferred to a label; every label must be reached with a freshly reset
// accumulator, i.e. it must be preceded in layout by a .sigcheck, or by an
// instruction that never falls through (jmp, jr, ret, trap, halt), or be a
// function entry reached via jal placed directly after a .sigcheck.  The
// code generator emits conforming code automatically; hand-written code
// that violates the discipline fails its next signature check at run time
// (a false CONTROL FLOW ERROR), which tests will catch immediately.
//
// Registers are r0..r15 with aliases zero (r0), sp (r14) and lr (r15).
// Memory operands are [rX], [rX+imm], [rX-imm] or [sym] (absolute via r0).
//
// Pseudo-instructions (expanded deterministically):
//   li  rd, imm32     1 word (movi) when the literal fits 18 signed bits,
//                     else 2 words (movhi + ori). Symbolic values always 2.
//   lif rd, float     li with the float's bit pattern.
//   la  rd, sym       movhi + ori with the symbol's address (always 2).
//   mov rd, ra        or rd, ra, r0
//   push rs / pop rd  stack ops through sp
//   ret               jr lr
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "tvm/isa.hpp"
#include "tvm/memory.hpp"

namespace earl::tvm {

struct AssembledProgram {
  std::vector<std::uint32_t> code;
  std::vector<std::uint32_t> data;
  std::map<std::string, std::uint32_t> symbols;  // name -> value/address
  std::uint32_t entry = kCodeBase;
  std::vector<std::string> errors;  // "line N: message"

  bool ok() const { return errors.empty(); }

  /// Address of a symbol; asserts in debug builds when missing — callers
  /// use this for symbols they just assembled.
  std::uint32_t symbol(const std::string& name) const;
};

AssembledProgram assemble(std::string_view source);

/// Loads code + data images into a machine and resets the CPU at the entry
/// point. Returns false if an image does not fit its region.
bool load_program(const AssembledProgram& program, MemoryMap& mem);

}  // namespace earl::tvm
