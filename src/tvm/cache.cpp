#include "tvm/cache.hpp"

#include "util/bitops.hpp"

namespace earl::tvm {

DataCache::DataCache(CacheConfig config) : config_(config) {}

Edm DataCache::fill(std::uint32_t addr, MemoryMap& mem) {
  const unsigned index = index_of(addr);
  Line& line = lines_[index];
  const std::uint32_t want_tag = tag_of(addr);
  if (line.valid && line.tag == want_tag) return Edm::kNone;

  if (line.valid && line.dirty) {
    const Edm victim_fault = write_back(index, mem);
    if (victim_fault != Edm::kNone) return victim_fault;
  }

  const std::uint32_t base = addr & ~(kLineBytes - 1u);
  Edm fault = Edm::kNone;
  for (unsigned w = 0; w < kWordsPerLine; ++w) {
    const std::uint32_t word_addr = base + w * 4;
    if (mem.is_poisoned(word_addr)) fault = Edm::kDataError;
    line.words[w] = mem.read_raw(word_addr);
    line.parity[w] = util::odd_parity32(line.words[w]);
  }
  line.tag = want_tag;
  line.valid = true;
  line.dirty = false;
  return fault;
}

Edm DataCache::write_back(unsigned index, MemoryMap& mem) {
  Line& line = lines_[index];
  const std::uint32_t base = line_base_address(line.tag, index);
  // The write-back address is reconstructed from the stored tag. A
  // corrupted tag aims the bus transaction at non-cacheable or unmapped
  // memory; the bus interface refuses it — this is how tag-bit upsets
  // surface as ADDRESS/BUS errors rather than silent corruption.
  const Region region = classify_address(base);
  if (region != Region::kData && region != Region::kStack) {
    line.dirty = false;  // transaction aborted; the node traps anyway
    return region == Region::kUnmapped ? Edm::kBusError : Edm::kAddressError;
  }
  for (unsigned w = 0; w < kWordsPerLine; ++w) {
    mem.write_raw(base + w * 4, line.words[w]);
  }
  line.dirty = false;
  ++stats_.writebacks;
  return Edm::kNone;
}

CacheAccess DataCache::read_word(std::uint32_t addr, MemoryMap& mem) {
  CacheAccess result;
  const unsigned index = index_of(addr);
  Line& line = lines_[index];
  result.hit = line.valid && line.tag == tag_of(addr);
  if (result.hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    result.fault = fill(addr, mem);
    if (result.fault != Edm::kNone) return result;
  }
  const unsigned w = (addr >> 2) & (kWordsPerLine - 1u);
  result.value = line.words[w];
  if (config_.parity_enabled &&
      line.parity[w] != util::odd_parity32(line.words[w])) {
    result.fault = Edm::kDataError;
  }
  return result;
}

CacheAccess DataCache::write_word(std::uint32_t addr, std::uint32_t value,
                                  MemoryMap& mem) {
  CacheAccess result;
  const unsigned index = index_of(addr);
  Line& line = lines_[index];
  result.hit = line.valid && line.tag == tag_of(addr);
  if (result.hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    result.fault = fill(addr, mem);
    if (result.fault != Edm::kNone) return result;
  }
  const unsigned w = (addr >> 2) & (kWordsPerLine - 1u);
  line.words[w] = value;
  line.parity[w] = util::odd_parity32(value);
  line.dirty = true;
  result.value = value;
  return result;
}

void DataCache::flush(MemoryMap& mem) {
  for (unsigned index = 0; index < kCacheLines; ++index) {
    if (lines_[index].valid && lines_[index].dirty) {
      (void)write_back(index, mem);
    }
  }
}

void DataCache::invalidate_all() {
  for (Line& line : lines_) line = Line{};
  stats_ = CacheStats{};
}

bool DataCache::probe(std::uint32_t addr) const {
  const Line& line = lines_[index_of(addr)];
  return line.valid && line.tag == tag_of(addr);
}

std::uint32_t DataCache::data_word(unsigned line, unsigned word) const {
  return lines_[line & 7u].words[word & 3u];
}

void DataCache::set_data_word(unsigned line, unsigned word,
                              std::uint32_t value) {
  lines_[line & 7u].words[word & 3u] = value;
}

std::uint32_t DataCache::tag(unsigned line) const {
  return lines_[line & 7u].tag;
}

void DataCache::set_tag(unsigned line, std::uint32_t value) {
  lines_[line & 7u].tag = value & ((1u << kTagBits) - 1u);
}

bool DataCache::valid(unsigned line) const { return lines_[line & 7u].valid; }
void DataCache::set_valid(unsigned line, bool v) { lines_[line & 7u].valid = v; }
bool DataCache::dirty(unsigned line) const { return lines_[line & 7u].dirty; }
void DataCache::set_dirty(unsigned line, bool v) { lines_[line & 7u].dirty = v; }

bool DataCache::parity_bit(unsigned line, unsigned word) const {
  return lines_[line & 7u].parity[word & 3u];
}

void DataCache::set_parity_bit(unsigned line, unsigned word, bool v) {
  lines_[line & 7u].parity[word & 3u] = v;
}

}  // namespace earl::tvm
