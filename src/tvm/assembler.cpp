#include "tvm/assembler.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "util/bitops.hpp"

namespace earl::tvm {

std::uint32_t AssembledProgram::symbol(const std::string& name) const {
  const auto it = symbols.find(name);
  assert(it != symbols.end() && "unknown symbol");
  return it == symbols.end() ? 0u : it->second;
}

namespace {

struct Operand {
  enum class Kind { kReg, kImm, kSym, kMem } kind = Kind::kImm;
  unsigned reg = 0;          // kReg / kMem base register
  std::int64_t value = 0;    // kImm / kMem displacement
  std::string sym;           // kSym / kMem absolute symbol
  bool mem_absolute = false; // kMem with [sym] form
};

struct Statement {
  enum class Kind {
    kInstruction,
    kSigCheck,
    kWord,
    kFloat,
    kSpace,
  } kind = Kind::kInstruction;
  std::string mnemonic;
  std::vector<Operand> operands;
  int line = 0;
  bool in_text = true;
  std::uint32_t address = 0;  // assigned in pass 1
  unsigned size_words = 1;
  double fvalue = 0.0;        // .float payload
};

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split_operands(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : s) {
    if (c == '[') ++depth;
    if (c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  const std::string last = trim(cur);
  if (!last.empty()) out.push_back(last);
  return out;
}

bool parse_int(std::string_view text, std::int64_t* out) {
  std::string t = trim(text);
  if (t.empty()) return false;
  bool negative = false;
  std::size_t pos = 0;
  if (t[0] == '-' || t[0] == '+') {
    negative = t[0] == '-';
    pos = 1;
  }
  int base = 10;
  if (t.size() > pos + 1 && t[pos] == '0' && (t[pos + 1] == 'x' || t[pos + 1] == 'X')) {
    base = 16;
    pos += 2;
  }
  std::uint64_t magnitude = 0;
  const char* first = t.data() + pos;
  const char* last = t.data() + t.size();
  if (first == last) return false;
  const auto [ptr, ec] = std::from_chars(first, last, magnitude, base);
  if (ec != std::errc{} || ptr != last) return false;
  *out = negative ? -static_cast<std::int64_t>(magnitude)
                  : static_cast<std::int64_t>(magnitude);
  return true;
}

std::optional<unsigned> parse_register(std::string_view text) {
  std::string t = trim(text);
  for (auto& c : t) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (t == "zero") return 0u;
  if (t == "sp") return kRegSp;
  if (t == "lr") return kRegLr;
  if (t.size() >= 2 && t[0] == 'r') {
    std::int64_t n = 0;
    if (parse_int(t.substr(1), &n) && n >= 0 && n < kNumRegs) {
      return static_cast<unsigned>(n);
    }
  }
  return std::nullopt;
}

bool valid_symbol_name(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '.') {
      return false;
    }
  }
  return true;
}

Operand parse_operand(const std::string& text, std::vector<std::string>* errors,
                      int line) {
  Operand op;
  auto error = [&](const std::string& msg) {
    errors->push_back("line " + std::to_string(line) + ": " + msg);
  };

  if (text.empty()) {
    error("empty operand");
    return op;
  }
  if (text.front() == '[') {
    if (text.back() != ']') {
      error("unterminated memory operand '" + text + "'");
      return op;
    }
    op.kind = Operand::Kind::kMem;
    const std::string inner = trim(text.substr(1, text.size() - 2));
    // Forms: rX | rX+imm | rX-imm | sym
    std::size_t split = inner.find_first_of("+-", 1);
    const std::string base = trim(split == std::string::npos
                                      ? inner
                                      : inner.substr(0, split));
    if (auto r = parse_register(base)) {
      op.reg = *r;
      if (split != std::string::npos) {
        std::int64_t disp = 0;
        if (!parse_int(inner.substr(split), &disp)) {
          error("bad displacement in '" + text + "'");
        }
        op.value = disp;
      }
    } else if (valid_symbol_name(inner)) {
      op.mem_absolute = true;
      op.sym = inner;
      op.reg = 0;
    } else {
      error("bad memory operand '" + text + "'");
    }
    return op;
  }
  if (auto r = parse_register(text)) {
    op.kind = Operand::Kind::kReg;
    op.reg = *r;
    return op;
  }
  std::int64_t value = 0;
  if (parse_int(text, &value)) {
    op.kind = Operand::Kind::kImm;
    op.value = value;
    return op;
  }
  if (valid_symbol_name(text)) {
    op.kind = Operand::Kind::kSym;
    op.sym = text;
    return op;
  }
  error("unparseable operand '" + text + "'");
  return op;
}

bool fits_imm18(std::int64_t v) { return v >= -(1 << 17) && v < (1 << 17); }

struct MnemonicInfo {
  Opcode op;
  enum class Shape {
    kNone,        // nop, halt, yield
    kRdRaRb,      // add rd, ra, rb
    kRdRa,        // fneg rd, ra
    kRaRb,        // cmp ra, rb
    kRdRaImm,     // addi rd, ra, imm
    kRaImm,       // cmpi ra, imm
    kRdImm,       // movi rd, imm
    kMem,         // ldw/stw rd, [..]
    kBranch,      // beq label
    kJump,        // jmp/jal label
    kJr,          // jr ra
    kTrap,        // trap imm
  } shape;
};

std::optional<MnemonicInfo> mnemonic_info(const std::string& m) {
  using S = MnemonicInfo::Shape;
  static const std::map<std::string, MnemonicInfo> table = {
      {"nop", {Opcode::kNop, S::kNone}},
      {"halt", {Opcode::kHalt, S::kNone}},
      {"yield", {Opcode::kYield, S::kNone}},
      {"trap", {Opcode::kTrap, S::kTrap}},
      {"add", {Opcode::kAdd, S::kRdRaRb}},
      {"sub", {Opcode::kSub, S::kRdRaRb}},
      {"mul", {Opcode::kMul, S::kRdRaRb}},
      {"divs", {Opcode::kDivs, S::kRdRaRb}},
      {"and", {Opcode::kAnd, S::kRdRaRb}},
      {"or", {Opcode::kOr, S::kRdRaRb}},
      {"xor", {Opcode::kXor, S::kRdRaRb}},
      {"sll", {Opcode::kSll, S::kRdRaRb}},
      {"srl", {Opcode::kSrl, S::kRdRaRb}},
      {"sra", {Opcode::kSra, S::kRdRaRb}},
      {"addi", {Opcode::kAddi, S::kRdRaImm}},
      {"ori", {Opcode::kOri, S::kRdRaImm}},
      {"andi", {Opcode::kAndi, S::kRdRaImm}},
      {"xori", {Opcode::kXori, S::kRdRaImm}},
      {"movi", {Opcode::kMovi, S::kRdImm}},
      {"movhi", {Opcode::kMovhi, S::kRdImm}},
      {"ldw", {Opcode::kLdw, S::kMem}},
      {"stw", {Opcode::kStw, S::kMem}},
      {"cmp", {Opcode::kCmp, S::kRaRb}},
      {"cmpi", {Opcode::kCmpi, S::kRaImm}},
      {"fcmp", {Opcode::kFcmp, S::kRaRb}},
      {"fadd", {Opcode::kFadd, S::kRdRaRb}},
      {"fsub", {Opcode::kFsub, S::kRdRaRb}},
      {"fmul", {Opcode::kFmul, S::kRdRaRb}},
      {"fdiv", {Opcode::kFdiv, S::kRdRaRb}},
      {"fneg", {Opcode::kFneg, S::kRdRa}},
      {"fabs", {Opcode::kFabs, S::kRdRa}},
      {"itof", {Opcode::kItof, S::kRdRa}},
      {"ftoi", {Opcode::kFtoi, S::kRdRa}},
      {"beq", {Opcode::kBeq, S::kBranch}},
      {"bne", {Opcode::kBne, S::kBranch}},
      {"blt", {Opcode::kBlt, S::kBranch}},
      {"bge", {Opcode::kBge, S::kBranch}},
      {"ble", {Opcode::kBle, S::kBranch}},
      {"bgt", {Opcode::kBgt, S::kBranch}},
      {"jmp", {Opcode::kJmp, S::kJump}},
      {"jal", {Opcode::kJal, S::kJump}},
      {"jr", {Opcode::kJr, S::kJr}},
  };
  const auto it = table.find(m);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

/// Assembly context shared by both passes.
class Assembly {
 public:
  AssembledProgram run(std::string_view source) {
    parse(source);
    if (program_.errors.empty()) layout();
    if (program_.errors.empty()) emit();
    return std::move(program_);
  }

 private:
  void error(int line, const std::string& msg) {
    program_.errors.push_back("line " + std::to_string(line) + ": " + msg);
  }

  // --- Pass 0: parse source into statements + raw labels -----------------
  void parse(std::string_view source) {
    int line_no = 0;
    bool in_text = true;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      const std::size_t nl = source.find('\n', pos);
      std::string_view raw = source.substr(
          pos, nl == std::string_view::npos ? source.size() - pos : nl - pos);
      pos = nl == std::string_view::npos ? source.size() + 1 : nl + 1;
      ++line_no;

      // Strip comments.
      const std::size_t comment = raw.find_first_of(";#");
      if (comment != std::string_view::npos) raw = raw.substr(0, comment);
      std::string text = trim(raw);
      if (text.empty()) continue;

      // Labels (possibly several on one line).
      while (true) {
        const std::size_t colon = text.find(':');
        if (colon == std::string::npos) break;
        const std::string label = trim(text.substr(0, colon));
        if (!valid_symbol_name(label)) {
          error(line_no, "bad label '" + label + "'");
          return;
        }
        labels_.push_back({label, statements_.size(), in_text, line_no});
        text = trim(text.substr(colon + 1));
      }
      if (text.empty()) continue;

      if (text[0] == '.') {
        parse_directive(text, line_no, &in_text);
      } else {
        parse_instruction(text, line_no, in_text);
      }
    }
  }

  void parse_directive(const std::string& text, int line_no, bool* in_text) {
    const std::size_t space = text.find_first_of(" \t");
    const std::string name =
        space == std::string::npos ? text : text.substr(0, space);
    const std::string rest =
        space == std::string::npos ? "" : trim(text.substr(space));
    if (name == ".text") {
      *in_text = true;
    } else if (name == ".data") {
      *in_text = false;
    } else if (name == ".entry") {
      entry_symbol_ = rest;
      entry_line_ = line_no;
    } else if (name == ".equ") {
      const auto parts = split_operands(rest);
      std::int64_t value = 0;
      if (parts.size() != 2 || !valid_symbol_name(parts[0]) ||
          !parse_int(parts[1], &value)) {
        error(line_no, "bad .equ");
        return;
      }
      if (!program_.symbols.emplace(parts[0], static_cast<std::uint32_t>(value)).second) {
        error(line_no, "duplicate symbol '" + parts[0] + "'");
      }
    } else if (name == ".sigcheck") {
      Statement st;
      st.kind = Statement::Kind::kSigCheck;
      st.line = line_no;
      st.in_text = *in_text;
      if (!*in_text) {
        error(line_no, ".sigcheck outside .text");
        return;
      }
      statements_.push_back(std::move(st));
    } else if (name == ".word") {
      Statement st;
      st.kind = Statement::Kind::kWord;
      st.line = line_no;
      st.in_text = *in_text;
      st.operands.push_back(parse_operand(rest, &program_.errors, line_no));
      statements_.push_back(std::move(st));
    } else if (name == ".float") {
      Statement st;
      st.kind = Statement::Kind::kFloat;
      st.line = line_no;
      st.in_text = *in_text;
      char* end = nullptr;
      st.fvalue = std::strtod(rest.c_str(), &end);
      if (end == rest.c_str() || *end != '\0') {
        error(line_no, "bad .float value '" + rest + "'");
      }
      statements_.push_back(std::move(st));
    } else if (name == ".space") {
      Statement st;
      st.kind = Statement::Kind::kSpace;
      st.line = line_no;
      st.in_text = *in_text;
      std::int64_t bytes = 0;
      if (!parse_int(rest, &bytes) || bytes < 0 || bytes % 4 != 0) {
        error(line_no, ".space needs a non-negative word multiple");
        return;
      }
      st.size_words = static_cast<unsigned>(bytes / 4);
      statements_.push_back(std::move(st));
    } else {
      error(line_no, "unknown directive '" + name + "'");
    }
  }

  void parse_instruction(const std::string& text, int line_no, bool in_text) {
    if (!in_text) {
      error(line_no, "instruction outside .text");
      return;
    }
    const std::size_t space = text.find_first_of(" \t");
    Statement st;
    st.kind = Statement::Kind::kInstruction;
    st.line = line_no;
    st.in_text = true;
    st.mnemonic = space == std::string::npos ? text : text.substr(0, space);
    for (auto& c : st.mnemonic) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (space != std::string::npos) {
      const auto operand_texts = split_operands(text.substr(space));
      if (st.mnemonic == "lif") {
        // lif rd, <float literal>: the second operand is a float, which the
        // generic operand grammar does not cover.
        if (operand_texts.size() == 2) {
          st.operands.push_back(
              parse_operand(operand_texts[0], &program_.errors, line_no));
          char* end = nullptr;
          st.fvalue = std::strtod(operand_texts[1].c_str(), &end);
          if (end == operand_texts[1].c_str() || *end != '\0') {
            error(line_no, "bad float literal '" + operand_texts[1] + "'");
          }
        } else {
          error(line_no, "lif needs two operands");
        }
      } else {
        for (const auto& operand_text : operand_texts) {
          st.operands.push_back(
              parse_operand(operand_text, &program_.errors, line_no));
        }
      }
    }
    // Size pseudo-instructions now so pass-1 layout is possible.
    st.size_words = pseudo_size(st);
    statements_.push_back(std::move(st));
  }

  unsigned pseudo_size(const Statement& st) {
    const std::string& m = st.mnemonic;
    if (m == "lif") {
      const auto bits = static_cast<std::int32_t>(
          util::float_to_bits(static_cast<float>(st.fvalue)));
      return fits_imm18(bits) ? 1 : 2;
    }
    if (m == "li") {
      if (st.operands.size() == 2 &&
          st.operands[1].kind == Operand::Kind::kImm) {
        return fits_imm18(st.operands[1].value) ? 1 : 2;
      }
      return 2;
    }
    if (m == "la") return 2;
    if (m == "push" || m == "pop") return 2;
    return 1;
  }

  // --- Pass 1: address assignment -----------------------------------------
  void layout() {
    std::uint32_t code_addr = kCodeBase;
    std::uint32_t data_addr = kDataBase;
    std::size_t label_cursor = 0;
    for (std::size_t i = 0; i < statements_.size(); ++i) {
      // Bind labels that precede this statement.
      while (label_cursor < labels_.size() &&
             labels_[label_cursor].statement == i) {
        bind_label(labels_[label_cursor],
                   labels_[label_cursor].in_text ? code_addr : data_addr);
        ++label_cursor;
      }
      Statement& st = statements_[i];
      std::uint32_t& addr = st.in_text ? code_addr : data_addr;
      st.address = addr;
      addr += 4 * st.size_words;
    }
    // Trailing labels bind to the end of their section.
    while (label_cursor < labels_.size()) {
      bind_label(labels_[label_cursor],
                 labels_[label_cursor].in_text ? code_addr : data_addr);
      ++label_cursor;
    }
    if (code_addr > kCodeBase + kCodeSize) {
      program_.errors.push_back("code image exceeds ROM size");
    }
    if (data_addr > kDataBase + kDataSize) {
      program_.errors.push_back("data image exceeds RAM size");
    }
    if (!entry_symbol_.empty()) {
      const auto it = program_.symbols.find(entry_symbol_);
      if (it == program_.symbols.end()) {
        error(entry_line_, "unknown entry symbol '" + entry_symbol_ + "'");
      } else {
        program_.entry = it->second;
      }
    }
  }

  struct Label {
    std::string name;
    std::size_t statement;  // index of the statement the label precedes
    bool in_text;
    int line;
  };

  void bind_label(const Label& label, std::uint32_t addr) {
    if (!program_.symbols.emplace(label.name, addr).second) {
      error(label.line, "duplicate symbol '" + label.name + "'");
    }
  }

  // --- Pass 2: encoding ----------------------------------------------------
  std::optional<std::int64_t> resolve(const Operand& op, int line) {
    switch (op.kind) {
      case Operand::Kind::kImm:
        return op.value;
      case Operand::Kind::kSym: {
        const auto it = program_.symbols.find(op.sym);
        if (it == program_.symbols.end()) {
          error(line, "unknown symbol '" + op.sym + "'");
          return std::nullopt;
        }
        return static_cast<std::int64_t>(it->second);
      }
      default:
        error(line, "expected an immediate or symbol");
        return std::nullopt;
    }
  }

  void emit_word(const Statement& st, std::uint32_t word) {
    std::vector<std::uint32_t>& section = st.in_text ? program_.code : program_.data;
    section.push_back(word);
    if (st.in_text) {
      const auto decoded = decode(word);
      if (decoded && decoded->op != Opcode::kSig &&
          !is_control_transfer(decoded->op)) {
        sig_acc_ = sig_step(sig_acc_, word);
      }
    }
  }

  void emit_instruction(const Statement& st, Opcode op, unsigned rd,
                        unsigned ra, unsigned rb, std::int32_t imm) {
    Instruction ins;
    ins.op = op;
    ins.rd = rd;
    ins.ra = ra;
    ins.rb = rb;
    ins.imm = imm;
    emit_word(st, encode(ins));
  }

  bool expect_operands(const Statement& st, std::size_t n) {
    if (st.operands.size() != n) {
      error(st.line, "expected " + std::to_string(n) + " operands for '" +
                         st.mnemonic + "'");
      return false;
    }
    return true;
  }

  bool expect_reg(const Statement& st, std::size_t index) {
    if (index >= st.operands.size() ||
        st.operands[index].kind != Operand::Kind::kReg) {
      error(st.line, "operand " + std::to_string(index + 1) +
                         " of '" + st.mnemonic + "' must be a register");
      return false;
    }
    return true;
  }

  void emit_li(const Statement& st, unsigned rd, std::uint32_t value) {
    const auto as_signed = static_cast<std::int32_t>(value);
    if (fits_imm18(as_signed) && st.size_words == 1) {
      emit_instruction(st, Opcode::kMovi, rd, 0, 0, as_signed);
      return;
    }
    emit_instruction(st, Opcode::kMovhi, rd, 0, 0,
                     static_cast<std::int32_t>(value >> 16));
    emit_instruction(st, Opcode::kOri, rd, rd, 0,
                     static_cast<std::int32_t>(value & 0xffffu));
  }

  void emit() {
    // Code labels are basic-block entries: by the signature discipline
    // (assembler.hpp) execution always reaches a label with a freshly reset
    // accumulator, so the static accumulator resets there too.
    std::vector<bool> label_at_statement(statements_.size() + 1, false);
    for (const Label& label : labels_) {
      if (label.in_text) label_at_statement[label.statement] = true;
    }
    for (std::size_t i = 0; i < statements_.size(); ++i) {
      if (label_at_statement[i] && statements_[i].in_text) sig_acc_ = 0;
      const Statement& st = statements_[i];
      switch (st.kind) {
        case Statement::Kind::kWord: {
          if (st.in_text) {
            error(st.line, ".word in .text is not supported");
            break;
          }
          std::int64_t value = 0;
          if (st.operands.size() == 1) {
            if (auto v = resolve(st.operands[0], st.line)) value = *v;
          } else {
            error(st.line, ".word needs one value");
          }
          program_.data.push_back(static_cast<std::uint32_t>(value));
          break;
        }
        case Statement::Kind::kFloat:
          if (st.in_text) {
            error(st.line, ".float in .text is not supported");
          } else {
            program_.data.push_back(
                util::float_to_bits(static_cast<float>(st.fvalue)));
          }
          break;
        case Statement::Kind::kSpace:
          for (unsigned w = 0; w < st.size_words; ++w) {
            (st.in_text ? program_.code : program_.data).push_back(0);
          }
          break;
        case Statement::Kind::kSigCheck:
          emit_instruction(st, Opcode::kSig, 0, 0, 0,
                           static_cast<std::int32_t>(sig_acc_));
          sig_acc_ = 0;
          break;
        case Statement::Kind::kInstruction:
          emit_one(st);
          break;
      }
    }
    if (program_.errors.empty() && entry_symbol_.empty() &&
        !program_.code.empty()) {
      program_.entry = kCodeBase;
    }
  }

  void emit_one(const Statement& st) {
    const std::string& m = st.mnemonic;

    // Pseudo-instructions first.
    if (m == "lif") {
      if (st.operands.size() != 1 ||
          st.operands[0].kind != Operand::Kind::kReg) {
        error(st.line, "lif needs a register and a float literal");
        return;
      }
      emit_li(st, st.operands[0].reg,
              util::float_to_bits(static_cast<float>(st.fvalue)));
      return;
    }
    if (m == "li" || m == "la") {
      if (!expect_operands(st, 2) || !expect_reg(st, 0)) return;
      const auto resolved = resolve(st.operands[1], st.line);
      if (!resolved) return;
      emit_li(st, st.operands[0].reg, static_cast<std::uint32_t>(*resolved));
      return;
    }
    if (m == "mov") {
      if (!expect_operands(st, 2) || !expect_reg(st, 0) || !expect_reg(st, 1)) return;
      emit_instruction(st, Opcode::kOr, st.operands[0].reg,
                       st.operands[1].reg, 0, 0);
      return;
    }
    if (m == "push") {
      if (!expect_operands(st, 1) || !expect_reg(st, 0)) return;
      emit_instruction(st, Opcode::kAddi, kRegSp, kRegSp, 0, -4);
      emit_instruction(st, Opcode::kStw, st.operands[0].reg, kRegSp, 0, 0);
      return;
    }
    if (m == "pop") {
      if (!expect_operands(st, 1) || !expect_reg(st, 0)) return;
      emit_instruction(st, Opcode::kLdw, st.operands[0].reg, kRegSp, 0, 0);
      emit_instruction(st, Opcode::kAddi, kRegSp, kRegSp, 0, 4);
      return;
    }
    if (m == "ret") {
      emit_instruction(st, Opcode::kJr, 0, kRegLr, 0, 0);
      return;
    }

    const auto info = mnemonic_info(m);
    if (!info) {
      error(st.line, "unknown mnemonic '" + m + "'");
      return;
    }
    using S = MnemonicInfo::Shape;
    switch (info->shape) {
      case S::kNone:
        if (!expect_operands(st, 0)) return;
        emit_instruction(st, info->op, 0, 0, 0, 0);
        break;
      case S::kRdRaRb:
        if (!expect_operands(st, 3) || !expect_reg(st, 0) ||
            !expect_reg(st, 1) || !expect_reg(st, 2)) {
          return;
        }
        emit_instruction(st, info->op, st.operands[0].reg, st.operands[1].reg,
                         st.operands[2].reg, 0);
        break;
      case S::kRdRa:
        if (!expect_operands(st, 2) || !expect_reg(st, 0) || !expect_reg(st, 1)) return;
        emit_instruction(st, info->op, st.operands[0].reg, st.operands[1].reg,
                         0, 0);
        break;
      case S::kRaRb:
        if (!expect_operands(st, 2) || !expect_reg(st, 0) || !expect_reg(st, 1)) return;
        emit_instruction(st, info->op, 0, st.operands[0].reg,
                         st.operands[1].reg, 0);
        break;
      case S::kRdRaImm: {
        if (!expect_operands(st, 3) || !expect_reg(st, 0) || !expect_reg(st, 1)) return;
        const auto imm = resolve(st.operands[2], st.line);
        if (!imm) return;
        if (info->op == Opcode::kAddi ? !fits_imm18(*imm)
                                      : (*imm < 0 || *imm >= (1 << 18))) {
          error(st.line, "immediate out of range");
          return;
        }
        emit_instruction(st, info->op, st.operands[0].reg, st.operands[1].reg,
                         0, static_cast<std::int32_t>(*imm));
        break;
      }
      case S::kRaImm: {
        if (!expect_operands(st, 2) || !expect_reg(st, 0)) return;
        const auto imm = resolve(st.operands[1], st.line);
        if (!imm) return;
        if (!fits_imm18(*imm)) {
          error(st.line, "immediate out of range");
          return;
        }
        emit_instruction(st, info->op, 0, st.operands[0].reg, 0,
                         static_cast<std::int32_t>(*imm));
        break;
      }
      case S::kRdImm: {
        if (!expect_operands(st, 2) || !expect_reg(st, 0)) return;
        const auto imm = resolve(st.operands[1], st.line);
        if (!imm) return;
        if (info->op == Opcode::kMovi && !fits_imm18(*imm)) {
          error(st.line, "movi immediate out of range (use li)");
          return;
        }
        emit_instruction(st, info->op, st.operands[0].reg, 0, 0,
                         static_cast<std::int32_t>(*imm));
        break;
      }
      case S::kMem: {
        if (!expect_operands(st, 2) || !expect_reg(st, 0)) return;
        const Operand& mem = st.operands[1];
        if (mem.kind != Operand::Kind::kMem) {
          error(st.line, "second operand must be a memory reference");
          return;
        }
        std::int64_t disp = mem.value;
        unsigned base = mem.reg;
        if (mem.mem_absolute) {
          const auto it = program_.symbols.find(mem.sym);
          if (it == program_.symbols.end()) {
            error(st.line, "unknown symbol '" + mem.sym + "'");
            return;
          }
          disp = it->second;
          base = 0;
        }
        if (!fits_imm18(disp)) {
          error(st.line, "memory displacement out of range");
          return;
        }
        emit_instruction(st, info->op, st.operands[0].reg, base, 0,
                         static_cast<std::int32_t>(disp));
        break;
      }
      case S::kBranch: {
        if (!expect_operands(st, 1)) return;
        const auto target = resolve(st.operands[0], st.line);
        if (!target) return;
        const std::int64_t offset_bytes = *target - st.address;
        if (offset_bytes % 4 != 0 || !fits_imm18(offset_bytes / 4)) {
          error(st.line, "branch target out of range");
          return;
        }
        emit_instruction(st, info->op, 0, 0, 0,
                         static_cast<std::int32_t>(offset_bytes / 4));
        break;
      }
      case S::kJump: {
        if (!expect_operands(st, 1)) return;
        const auto target = resolve(st.operands[0], st.line);
        if (!target) return;
        if (*target % 4 != 0 || *target < 0 || *target >= (1 << 28)) {
          error(st.line, "jump target out of range");
          return;
        }
        emit_instruction(st, info->op, 0, 0, 0,
                         static_cast<std::int32_t>(*target / 4));
        break;
      }
      case S::kJr:
        if (!expect_operands(st, 1) || !expect_reg(st, 0)) return;
        emit_instruction(st, info->op, 0, st.operands[0].reg, 0, 0);
        break;
      case S::kTrap: {
        if (!expect_operands(st, 1)) return;
        const auto code = resolve(st.operands[0], st.line);
        if (!code || *code < 0 || *code > 255) {
          error(st.line, "trap code out of range");
          return;
        }
        emit_instruction(st, info->op, 0, 0, 0,
                         static_cast<std::int32_t>(*code));
        break;
      }
    }
  }

  AssembledProgram program_;
  std::vector<Statement> statements_;
  std::vector<Label> labels_;
  std::string entry_symbol_;
  int entry_line_ = 0;
  std::uint16_t sig_acc_ = 0;
};

}  // namespace

AssembledProgram assemble(std::string_view source) {
  return Assembly().run(source);
}

bool load_program(const AssembledProgram& program, MemoryMap& mem) {
  if (!program.ok()) return false;
  if (!mem.load_code(program.code)) return false;
  if (!mem.load_data(program.data)) return false;
  return true;
}

}  // namespace earl::tvm
