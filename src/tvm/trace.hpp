// Detail-mode execution tracing.
//
// GOOFI's "detail mode" logs the system state before every machine
// instruction so error propagation can be analyzed offline.  ExecutionTrace
// is the equivalent: attach it to a Cpu via set_trace_sink() and it records,
// per retired instruction, the PC, the instruction word, and (optionally)
// the full register file.  RegisterDiff then pinpoints the first architec-
// tural divergence between a golden and a faulty trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tvm/cpu.hpp"

namespace earl::tvm {

struct TraceRecord {
  std::uint32_t pc = 0;
  std::uint32_t word = 0;
  std::array<std::uint32_t, kNumRegs> regs{};  // captured only in full mode
};

class ExecutionTrace : public TraceSink {
 public:
  /// `capture_registers` selects full detail mode (one register-file copy
  /// per instruction) vs. the cheap pc+word stream.
  explicit ExecutionTrace(bool capture_registers = false)
      : capture_registers_(capture_registers) {}

  void on_step(const CpuState& before, std::uint32_t word) override;

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Renders a disassembly listing of the trace (for examples/debugging).
  std::string to_listing(std::size_t max_records = 0) const;

 private:
  bool capture_registers_;
  std::vector<TraceRecord> records_;
};

/// First index at which two traces diverge in pc, instruction word, or (if
/// captured) register contents. Returns the shorter length when one trace
/// is a prefix of the other, or SIZE_MAX when identical.
std::size_t first_divergence(const ExecutionTrace& golden,
                             const ExecutionTrace& faulty);

/// Architectural register-file delta between two matched trace records:
/// bit r of `mask` is set when GPR r differs.  This is how propagation
/// analysis names "which registers the fault had corrupted" compactly
/// enough to travel in an experiment record.
struct RegisterDiff {
  std::uint32_t mask = 0;

  bool empty() const { return mask == 0; }
  /// Indices of differing registers, ascending.
  std::vector<unsigned> registers() const;
  /// " r1 r5"-style rendering ("-" when empty).
  std::string to_string() const;
};

RegisterDiff register_diff(const std::array<std::uint32_t, kNumRegs>& golden,
                           const std::array<std::uint32_t, kNumRegs>& faulty);

/// Diff of the register files captured at `index` in two full-detail traces
/// (empty when either trace is shorter or registers were not captured).
RegisterDiff register_diff_at(const ExecutionTrace& golden,
                              const ExecutionTrace& faulty,
                              std::size_t index);

}  // namespace earl::tvm
