// Detail-mode execution tracing.
//
// GOOFI's "detail mode" logs the system state before every machine
// instruction so error propagation can be analyzed offline.  ExecutionTrace
// is the equivalent: attach it to a Cpu via set_trace_sink() and it records,
// per retired instruction, the PC, the instruction word, and (optionally)
// the full register file.  RegisterDiff then pinpoints the first architec-
// tural divergence between a golden and a faulty trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tvm/cpu.hpp"

namespace earl::tvm {

struct TraceRecord {
  std::uint32_t pc = 0;
  std::uint32_t word = 0;
  std::array<std::uint32_t, kNumRegs> regs{};  // captured only in full mode
};

class ExecutionTrace : public TraceSink {
 public:
  /// `capture_registers` selects full detail mode (one register-file copy
  /// per instruction) vs. the cheap pc+word stream.
  explicit ExecutionTrace(bool capture_registers = false)
      : capture_registers_(capture_registers) {}

  void on_step(const CpuState& before, std::uint32_t word) override;

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Renders a disassembly listing of the trace (for examples/debugging).
  std::string to_listing(std::size_t max_records = 0) const;

 private:
  bool capture_registers_;
  std::vector<TraceRecord> records_;
};

/// First index at which two traces diverge in pc, instruction word, or (if
/// captured) register contents. Returns the shorter length when one trace
/// is a prefix of the other, or SIZE_MAX when identical.
std::size_t first_divergence(const ExecutionTrace& golden,
                             const ExecutionTrace& faulty);

}  // namespace earl::tvm
