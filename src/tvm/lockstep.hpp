// Master/slave lockstep execution.
//
// Thor includes a MASTER/SLAVE COMPARATOR mechanism (two Thor processors
// executing in lockstep with result comparison) that the paper lists but
// does not use.  We implement it as an optional node configuration so the
// duplication-and-comparison alternative the introduction discusses can be
// evaluated: two Machines run the same program; after every instruction the
// comparator checks the architected state the instruction exposed on the
// "bus" (PC, memory address/data latches and the result latch).  A mismatch
// raises COMPARATOR ERROR, giving the node fail-stop behaviour for any
// fault that perturbs either copy — at double the hardware cost.
#pragma once

#include <cstdint>

#include "tvm/cpu.hpp"

namespace earl::tvm {

class LockstepPair {
 public:
  explicit LockstepPair(CacheConfig cache_config = {})
      : master_(cache_config), slave_(cache_config) {}

  Machine& master() { return master_; }
  Machine& slave() { return slave_; }

  /// Loads the same program into both machines and resets them.
  bool load(const class AssembledProgram& program);
  void reset(std::uint32_t entry);

  /// Steps both machines and compares their bus-visible state. Any
  /// divergence (including one machine trapping and the other not) is a
  /// COMPARATOR ERROR.
  StepOutcome step();

  /// Runs until yield/halt/trap/comparator error or budget exhaustion.
  RunResult run(std::uint64_t budget);

 private:
  bool bus_state_matches() const;

  Machine master_;
  Machine slave_;
  std::uint32_t entry_ = kCodeBase;
};

}  // namespace earl::tvm
