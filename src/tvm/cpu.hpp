// TVM CPU core.
//
// Functional interpreter with explicit micro-architectural latches.  The
// four-stage pipeline is modelled at instruction granularity: the next
// instruction is *prefetched* into IR at the end of every step (so a bit-flip
// injected at an instruction boundary corrupts the instruction about to
// execute, like a flip in a real pipeline's fetch latch), and the
// MAR/MDR/EX latches hold the values that flowed through the most recent
// memory access and ALU operation.  All latches are scan-chain state
// elements and therefore part of the fault space.
//
// Detection semantics: every mechanism from the paper's Table 1 raises a
// trap that stops the CPU — the node fail-stops, which is the "strong
// failure semantics" behaviour the paper's architecture assumes, and which
// terminates a fault-injection experiment ("debug event").
//
// Flag semantics (set by cmp/cmpi/fcmp only): Z = equal, N = "a < b",
// C = unsigned borrow, V = signed overflow of the comparison subtraction.
// Conditional branches read N and Z.
#pragma once

#include <array>
#include <cstdint>

#include "tvm/cache.hpp"
#include "tvm/edm.hpp"
#include "tvm/isa.hpp"
#include "tvm/memory.hpp"

namespace earl::tvm {

/// Program-status-register bits (scan-chain order: bit 0 first).
struct Psr {
  bool n = false;
  bool z = false;
  bool c = false;
  bool v = false;
  bool user_mode = true;

  bool operator==(const Psr&) const = default;
};

/// All architected + micro-architected CPU state. Plain data: copying a
/// CpuState forks an execution, which is how campaign experiments start from
/// the golden initial state.
struct CpuState {
  std::array<std::uint32_t, kNumRegs> regs{};
  std::uint32_t pc = kCodeBase;  // address of the instruction in IR
  std::uint32_t ir = 0;          // prefetched instruction word
  std::uint32_t mar = 0;         // memory address register
  std::uint32_t mdr = 0;         // memory data register
  std::uint32_t ex = 0;          // ALU/FPU result latch
  std::uint16_t sig = 0;         // control-flow signature accumulator
  Psr psr;

  bool operator==(const CpuState&) const = default;
};

struct StepOutcome {
  enum class Kind : std::uint8_t { kOk, kYield, kHalt, kTrap };
  Kind kind = Kind::kOk;
  Edm edm = Edm::kNone;
  std::uint8_t trap_code = 0;  // reason code of a software TRAP
};

struct RunResult {
  enum class Kind : std::uint8_t { kYield, kHalt, kTrap, kBudgetExhausted };
  Kind kind = Kind::kBudgetExhausted;
  Edm edm = Edm::kNone;
  std::uint8_t trap_code = 0;
  std::uint64_t executed = 0;  // instructions retired during this run call
};

/// Observer for detail-mode execution traces (see trace.hpp).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_step(const CpuState& before, std::uint32_t word) = 0;
};

/// Lightweight retired-instruction profile (see obs/profile.hpp for the
/// campaign-level aggregation).  Owned by the caller; when attached, the
/// CPU bumps the slot of every decoded opcode it executes — one predictable
/// branch plus one increment on the hot path, and unlike instret_ it is NOT
/// cleared by reset(), so it accumulates across experiments.
struct ExecProfile {
  std::array<std::uint64_t, 64> opcode{};  // one slot per 6-bit opcode value
};

class Cpu {
 public:
  /// Resets all state and prefetches the first instruction from `entry`.
  void reset(std::uint32_t entry, const MemoryMap& mem);

  /// Executes exactly one instruction (the one in IR). After a trap the CPU
  /// is stopped: further step() calls return the same trap outcome.
  StepOutcome step(MemoryMap& mem, DataCache& cache);

  /// Runs until yield/halt/trap or until `budget` instructions retire.
  RunResult run(MemoryMap& mem, DataCache& cache, std::uint64_t budget);

  const CpuState& state() const { return state_; }
  CpuState& mutable_state() { return state_; }

  bool stopped() const { return stopped_; }
  std::uint64_t instructions_retired() const { return instret_; }

  /// Detail-mode observer; pass nullptr to disable (the default).
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  /// Instruction-mix profile; pass nullptr to disable (the default).  The
  /// profile must outlive the CPU or be detached first.
  void set_exec_profile(ExecProfile* profile) { exec_profile_ = profile; }

  /// Register read honouring the r0-is-zero convention.
  std::uint32_t reg(unsigned index) const {
    return index == 0 ? 0u : state_.regs[index & 15u];
  }

  /// True when the architectural state (registers, latches, PSR, stop
  /// condition) matches `other`.  The retired-instruction counter and the
  /// observer hooks are bookkeeping and excluded: two CPUs with equal
  /// architectural state execute identically from here on.
  bool state_equals(const Cpu& other) const {
    return state_ == other.state_ && stopped_ == other.stopped_;
  }

 private:
  void write_reg(unsigned index, std::uint32_t value) {
    if (index != 0) state_.regs[index & 15u] = value;
  }

  StepOutcome trap(Edm edm, std::uint8_t code = 0);
  StepOutcome finish(std::uint32_t next_pc, const MemoryMap& mem,
                     StepOutcome::Kind kind);

  CpuState state_;
  bool stopped_ = false;
  StepOutcome stop_outcome_{};
  std::uint64_t instret_ = 0;
  TraceSink* trace_ = nullptr;
  ExecProfile* exec_profile_ = nullptr;
};

/// A complete TVM node: memory, data cache and CPU. Copyable — each
/// fault-injection experiment clones the post-load machine and runs
/// independently, which makes campaigns embarrassingly parallel.
struct Machine {
  MemoryMap mem;
  DataCache cache;
  Cpu cpu;

  explicit Machine(CacheConfig cache_config = {}) : cache(cache_config) {}

  void reset(std::uint32_t entry) {
    mem.reset();
    cache.invalidate_all();
    cpu.reset(entry, mem);
  }

  StepOutcome step() { return cpu.step(mem, cache); }
  RunResult run(std::uint64_t budget) { return cpu.run(mem, cache, budget); }
};

}  // namespace earl::tvm
