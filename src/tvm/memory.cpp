#include "tvm/memory.hpp"

namespace earl::tvm {

Region classify_address(std::uint32_t addr) {
  if (addr < kNullGuardSize) return Region::kNullGuard;
  if (addr >= kCodeBase && addr < kCodeBase + kCodeSize) return Region::kCode;
  if (addr >= kDataBase && addr < kDataBase + kDataSize) return Region::kData;
  if (addr >= kStackBase && addr < kStackTop) return Region::kStack;
  if (addr >= kIoBase && addr < kIoBase + kIoSize) return Region::kIo;
  return Region::kUnmapped;
}

Edm check_access(std::uint32_t addr, AccessKind kind, bool user_mode,
                 std::uint32_t sp) {
  if ((addr & 3u) != 0) return Edm::kAddressError;
  const Region region = classify_address(addr);
  if (kind == AccessKind::kFetch) {
    return region == Region::kCode ? Edm::kNone : Edm::kAddressError;
  }
  switch (region) {
    case Region::kNullGuard:
      return Edm::kAccessCheck;
    case Region::kCode:
      // Code ROM is execute-only; wild data pointers into it are caught.
      return Edm::kAddressError;
    case Region::kData:
    case Region::kIo:
      return Edm::kNone;
    case Region::kStack:
      // The task stack grows down from kStackTop; in user mode an access
      // below the current stack pointer is outside the allocated frames.
      if (user_mode && addr < sp) return Edm::kStorageError;
      return Edm::kNone;
    case Region::kUnmapped:
      return Edm::kBusError;
  }
  return Edm::kBusError;
}

MemoryMap::MemoryMap()
    : code_(kCodeSize / 4, 0),
      data_(kDataSize / 4, 0),
      stack_(kStackSize / 4, 0),
      io_(kIoSize / 4, 0),
      data_poison_(kDataSize / 4, false),
      stack_poison_(kStackSize / 4, false) {}

bool MemoryMap::load_code(const std::vector<std::uint32_t>& words) {
  if (words.size() > code_.size()) return false;
  code_image_ = words;
  code_.assign(kCodeSize / 4, 0);
  for (std::size_t i = 0; i < words.size(); ++i) code_[i] = words[i];
  return true;
}

bool MemoryMap::load_data(const std::vector<std::uint32_t>& words) {
  if (words.size() > data_.size()) return false;
  data_image_ = words;
  data_.assign(kDataSize / 4, 0);
  for (std::size_t i = 0; i < words.size(); ++i) data_[i] = words[i];
  return true;
}

std::uint32_t MemoryMap::read_raw(std::uint32_t addr) const {
  switch (classify_address(addr)) {
    case Region::kCode:
      return code_[(addr - kCodeBase) / 4];
    case Region::kData:
      return data_[(addr - kDataBase) / 4];
    case Region::kStack:
      return stack_[(addr - kStackBase) / 4];
    case Region::kIo:
      return io_[(addr - kIoBase) / 4];
    default:
      return 0;
  }
}

void MemoryMap::write_raw(std::uint32_t addr, std::uint32_t value) {
  switch (classify_address(addr)) {
    case Region::kData:
      data_[(addr - kDataBase) / 4] = value;
      data_poison_[(addr - kDataBase) / 4] = false;
      break;
    case Region::kStack:
      stack_[(addr - kStackBase) / 4] = value;
      stack_poison_[(addr - kStackBase) / 4] = false;
      break;
    case Region::kIo:
      io_[(addr - kIoBase) / 4] = value;
      break;
    default:
      break;  // ROM and unmapped writes are dropped (caller already trapped)
  }
}

std::uint32_t MemoryMap::fetch(std::uint32_t addr) const {
  return code_[(addr - kCodeBase) / 4];
}

void MemoryMap::poison_word(std::uint32_t addr) {
  switch (classify_address(addr)) {
    case Region::kData:
      data_poison_[(addr - kDataBase) / 4] = true;
      break;
    case Region::kStack:
      stack_poison_[(addr - kStackBase) / 4] = true;
      break;
    default:
      break;
  }
}

bool MemoryMap::is_poisoned(std::uint32_t addr) const {
  switch (classify_address(addr)) {
    case Region::kData:
      return data_poison_[(addr - kDataBase) / 4];
    case Region::kStack:
      return stack_poison_[(addr - kStackBase) / 4];
    default:
      return false;
  }
}

void MemoryMap::reset() {
  data_.assign(kDataSize / 4, 0);
  for (std::size_t i = 0; i < data_image_.size(); ++i) data_[i] = data_image_[i];
  stack_.assign(kStackSize / 4, 0);
  io_.assign(kIoSize / 4, 0);
  data_poison_.assign(kDataSize / 4, false);
  stack_poison_.assign(kStackSize / 4, false);
}

}  // namespace earl::tvm
