// TVM instruction-set architecture.
//
// TVM is a deterministic 32-bit RISC-style CPU modelled after the role the
// Thor microprocessor plays in the paper: a small embedded CPU with hardware
// error-detection mechanisms whose internal state elements can be read and
// written bit-by-bit through a scan chain.  The ISA is *not* Thor's (Thor's
// ISA is proprietary); what the reproduction needs is an ISA rich enough to
// run compiled control code (integer + IEEE-754 single float + calls +
// branches) so that bit-flips in architected and micro-architected state
// produce the same classes of consequences the paper observes.
//
// Encoding (32-bit fixed width):
//   [31:26] opcode
//   R-type:  [25:22] rd   [21:18] ra   [17:14] rb   [13:0] reserved
//   I-type:  [25:22] rd   [21:18] ra   [17:0]  imm18 (sign-extended)
//   J-type:  [25:0] imm26 (absolute word index; byte address = imm26 * 4)
//   S-type:  [15:0] imm16 (SIG) / [7:0] imm8 (TRAP)
// Reserved bits are ignored on decode (don't-cares), so a bit-flip in a
// reserved field is architecturally silent — as in real hardware.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace earl::tvm {

enum class Opcode : std::uint8_t {
  kNop = 0x00,
  kHalt = 0x01,   // privileged: stops the CPU (supervisor only)
  kYield = 0x02,  // end of control iteration: pause for I/O exchange
  kSig = 0x03,    // control-flow signature check (S-type, imm16)
  kTrap = 0x04,   // software constraint trap (S-type, imm8 reason code)

  // Integer register-register (R-type).
  kAdd = 0x07,
  kSub = 0x08,
  kMul = 0x09,
  kDivs = 0x0A,  // signed divide; divide-by-zero raises DIVISION CHECK
  kAnd = 0x0B,
  kOr = 0x0C,
  kXor = 0x0D,
  kSll = 0x0E,
  kSrl = 0x0F,
  kSra = 0x10,

  // Integer register-immediate (I-type).
  kAddi = 0x11,
  kOri = 0x12,   // zero-extended imm18
  kAndi = 0x13,  // zero-extended imm18
  kXori = 0x14,  // zero-extended imm18
  kMovi = 0x15,  // rd = sign-extended imm18
  kMovhi = 0x16, // rd = imm18 << 16 (low 16 bits of imm used)

  // Memory (I-type, word-aligned only).
  kLdw = 0x17,  // rd = mem[ra + imm18]
  kStw = 0x18,  // mem[ra + imm18] = r(rd-field)

  // Compare (set PSR flags).
  kCmp = 0x19,   // R-type: flags from ra - rb (signed)
  kCmpi = 0x1A,  // I-type: flags from ra - imm18
  kFcmp = 0x1B,  // R-type: float compare ra, rb

  // IEEE-754 single precision (operands/results live in GPR bit patterns).
  kFadd = 0x1C,
  kFsub = 0x1D,
  kFmul = 0x1E,
  kFdiv = 0x1F,
  kFneg = 0x20,  // R-type rd, ra
  kFabs = 0x21,  // R-type rd, ra
  kItof = 0x22,  // rd = float(int(ra))
  kFtoi = 0x23,  // rd = int(truncate(float(ra))); overflow raises OVERFLOW

  // Control transfer.
  kBeq = 0x24,  // I-type: PC-relative word offset in imm18
  kBne = 0x25,
  kBlt = 0x26,
  kBge = 0x27,
  kBle = 0x28,
  kBgt = 0x29,
  kJmp = 0x2A,  // J-type absolute
  kJal = 0x2B,  // J-type absolute, link in r15
  kJr = 0x2C,   // R-type: jump to address in ra
};

/// Number of general-purpose registers. r0 reads as zero and ignores writes;
/// r14 is the stack pointer by convention; r15 is the link register.
inline constexpr unsigned kNumRegs = 16;
inline constexpr unsigned kRegSp = 14;
inline constexpr unsigned kRegLr = 15;

enum class Format : std::uint8_t { kNone, kR, kRTwo, kI, kMem, kJ, kSig, kTrap };

/// Static description of one opcode.
struct OpcodeInfo {
  const char* mnemonic;
  Format format;
  bool privileged;
  bool valid;
};

/// Metadata for every possible 6-bit opcode value (invalid slots included).
const OpcodeInfo& opcode_info(std::uint8_t opcode);
const OpcodeInfo& opcode_info(Opcode op);

/// A decoded instruction.
struct Instruction {
  Opcode op = Opcode::kNop;
  unsigned rd = 0;
  unsigned ra = 0;
  unsigned rb = 0;
  std::int32_t imm = 0;  // sign- or zero-extended per opcode semantics
};

/// Encodes an instruction into its 32-bit word. Fields outside the format
/// are ignored. Immediates are masked to their field width.
std::uint32_t encode(const Instruction& ins);

/// Decodes a word. Returns nullopt when the opcode is not architecturally
/// defined (the CPU raises INSTRUCTION ERROR in that case).
std::optional<Instruction> decode(std::uint32_t word);

/// Human-readable disassembly of one word, e.g. "fadd r3, r1, r2".
std::string disassemble(std::uint32_t word);

/// Control-flow signature step function, shared by the CPU (which accumulates
/// it at runtime) and the assembler (which computes the expected block value
/// statically for `.sigcheck`): rotate-left-1 then XOR with both halves of
/// the instruction word.
constexpr std::uint16_t sig_step(std::uint16_t sig, std::uint32_t word) {
  const std::uint16_t rotated =
      static_cast<std::uint16_t>((sig << 1) | (sig >> 15));
  return static_cast<std::uint16_t>(rotated ^ (word & 0xffffu) ^ (word >> 16));
}

/// True for opcodes that transfer control (used by the assembler to place
/// signature checks at basic-block boundaries).
bool is_control_transfer(Opcode op);

}  // namespace earl::tvm
