#include "tvm/cpu.hpp"

#include <cfloat>
#include <cmath>
#include <limits>

#include "util/bitops.hpp"

namespace earl::tvm {

namespace {

bool add_overflows(std::int32_t a, std::int32_t b, std::int32_t* out) {
  return __builtin_add_overflow(a, b, out);
}

bool sub_overflows(std::int32_t a, std::int32_t b, std::int32_t* out) {
  return __builtin_sub_overflow(a, b, out);
}

bool mul_overflows(std::int32_t a, std::int32_t b, std::int32_t* out) {
  return __builtin_mul_overflow(a, b, out);
}

bool is_denormal(float f) {
  return f != 0.0f && std::fabs(f) < FLT_MIN;
}

/// Classifies a float operand per the paper's ILLEGAL OPERATION mechanism:
/// fault-free control code never produces NaN or Inf, so an operand that is
/// either indicates corruption and the hardware flags it.
bool illegal_operand(float f) { return std::isnan(f) || std::isinf(f); }

}  // namespace

void Cpu::reset(std::uint32_t entry, const MemoryMap& mem) {
  state_ = CpuState{};
  state_.regs[kRegSp] = kStackTop;
  state_.pc = entry;
  state_.ir = mem.fetch(entry);
  stopped_ = false;
  stop_outcome_ = StepOutcome{};
  instret_ = 0;
}

StepOutcome Cpu::trap(Edm edm, std::uint8_t code) {
  stopped_ = true;
  stop_outcome_ = StepOutcome{StepOutcome::Kind::kTrap, edm, code};
  return stop_outcome_;
}

StepOutcome Cpu::finish(std::uint32_t next_pc, const MemoryMap& mem,
                        StepOutcome::Kind kind) {
  // Prefetch the next instruction. A sequential walk off the code region is
  // caught here as an ADDRESS ERROR (fetch from non-code memory).
  const Edm fetch_fault = check_access(next_pc, AccessKind::kFetch,
                                       state_.psr.user_mode, reg(kRegSp));
  if (fetch_fault != Edm::kNone) return trap(fetch_fault);
  state_.pc = next_pc;
  state_.ir = mem.fetch(next_pc);
  if (kind == StepOutcome::Kind::kHalt) {
    stopped_ = true;
    stop_outcome_ = StepOutcome{kind, Edm::kNone, 0};
    return stop_outcome_;
  }
  return StepOutcome{kind, Edm::kNone, 0};
}

StepOutcome Cpu::step(MemoryMap& mem, DataCache& cache) {
  if (stopped_) return stop_outcome_;

  const std::uint32_t word = state_.ir;
  if (trace_ != nullptr) trace_->on_step(state_, word);

  const auto decoded = decode(word);
  if (!decoded) return trap(Edm::kInstructionError);
  const Instruction ins = *decoded;
  const OpcodeInfo& info = opcode_info(ins.op);
  if (info.privileged && state_.psr.user_mode) {
    return trap(Edm::kInstructionError);
  }

  // Control-flow signature accumulates over every executed word except the
  // checks themselves and control transfers.  Excluding transfers makes a
  // block's expected signature independent of which predecessor branched to
  // it, so the assembler can compute it statically (see assembler.hpp).
  if (ins.op != Opcode::kSig && !is_control_transfer(ins.op)) {
    state_.sig = sig_step(state_.sig, word);
  }

  ++instret_;
  if (exec_profile_ != nullptr) {
    ++exec_profile_->opcode[static_cast<std::uint8_t>(ins.op) & 63u];
  }
  std::uint32_t next_pc = state_.pc + 4;

  auto branch_to = [&](std::uint32_t target) -> Edm {
    if ((target & 3u) != 0 ||
        classify_address(target) != Region::kCode) {
      return Edm::kJumpError;
    }
    next_pc = target;
    return Edm::kNone;
  };

  auto int_result = [&](std::uint32_t value) {
    state_.ex = value;
    write_reg(ins.rd, value);
  };

  // Float helper: validates operands, computes, validates the result, and
  // stores it. Returns the EDM to raise, or kNone.
  auto float_op = [&](float a, float b, char op) -> Edm {
    if (illegal_operand(a) || illegal_operand(b)) {
      return Edm::kIllegalOperation;
    }
    float r = 0.0f;
    switch (op) {
      case '+': r = a + b; break;
      case '-': r = a - b; break;
      case '*': r = a * b; break;
      case '/':
        if (b == 0.0f) return Edm::kDivisionCheck;
        r = a / b;
        break;
    }
    if (std::isnan(r)) return Edm::kIllegalOperation;
    if (std::isinf(r)) return Edm::kOverflowCheck;
    if (is_denormal(r)) return Edm::kUnderflowCheck;
    int_result(util::float_to_bits(r));
    return Edm::kNone;
  };

  switch (ins.op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      return finish(next_pc, mem, StepOutcome::Kind::kHalt);
    case Opcode::kYield:
      return finish(next_pc, mem, StepOutcome::Kind::kYield);
    case Opcode::kSig: {
      if (state_.sig != static_cast<std::uint16_t>(ins.imm)) {
        return trap(Edm::kControlFlowError);
      }
      state_.sig = 0;
      break;
    }
    case Opcode::kTrap:
      return trap(Edm::kConstraintError, static_cast<std::uint8_t>(ins.imm));

    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul: {
      const auto a = static_cast<std::int32_t>(reg(ins.ra));
      const auto b = static_cast<std::int32_t>(reg(ins.rb));
      std::int32_t out = 0;
      bool ovf = false;
      if (ins.op == Opcode::kAdd) ovf = add_overflows(a, b, &out);
      if (ins.op == Opcode::kSub) ovf = sub_overflows(a, b, &out);
      if (ins.op == Opcode::kMul) ovf = mul_overflows(a, b, &out);
      if (ovf) return trap(Edm::kOverflowCheck);
      int_result(static_cast<std::uint32_t>(out));
      break;
    }
    case Opcode::kDivs: {
      const auto a = static_cast<std::int32_t>(reg(ins.ra));
      const auto b = static_cast<std::int32_t>(reg(ins.rb));
      if (b == 0) return trap(Edm::kDivisionCheck);
      if (a == std::numeric_limits<std::int32_t>::min() && b == -1) {
        return trap(Edm::kOverflowCheck);
      }
      int_result(static_cast<std::uint32_t>(a / b));
      break;
    }
    case Opcode::kAnd: int_result(reg(ins.ra) & reg(ins.rb)); break;
    case Opcode::kOr: int_result(reg(ins.ra) | reg(ins.rb)); break;
    case Opcode::kXor: int_result(reg(ins.ra) ^ reg(ins.rb)); break;
    case Opcode::kSll: int_result(reg(ins.ra) << (reg(ins.rb) & 31u)); break;
    case Opcode::kSrl: int_result(reg(ins.ra) >> (reg(ins.rb) & 31u)); break;
    case Opcode::kSra:
      int_result(static_cast<std::uint32_t>(
          static_cast<std::int32_t>(reg(ins.ra)) >>
          (reg(ins.rb) & 31u)));
      break;

    case Opcode::kAddi: {
      const auto a = static_cast<std::int32_t>(reg(ins.ra));
      std::int32_t out = 0;
      if (add_overflows(a, ins.imm, &out)) return trap(Edm::kOverflowCheck);
      int_result(static_cast<std::uint32_t>(out));
      break;
    }
    case Opcode::kOri:
      int_result(reg(ins.ra) | static_cast<std::uint32_t>(ins.imm));
      break;
    case Opcode::kAndi:
      int_result(reg(ins.ra) & static_cast<std::uint32_t>(ins.imm));
      break;
    case Opcode::kXori:
      int_result(reg(ins.ra) ^ static_cast<std::uint32_t>(ins.imm));
      break;
    case Opcode::kMovi:
      int_result(static_cast<std::uint32_t>(ins.imm));
      break;
    case Opcode::kMovhi:
      int_result(static_cast<std::uint32_t>(ins.imm & 0xffff) << 16);
      break;

    case Opcode::kLdw:
    case Opcode::kStw: {
      const std::uint32_t addr =
          reg(ins.ra) + static_cast<std::uint32_t>(ins.imm);
      state_.mar = addr;
      const AccessKind kind =
          ins.op == Opcode::kLdw ? AccessKind::kLoad : AccessKind::kStore;
      const Edm fault =
          check_access(addr, kind, state_.psr.user_mode, reg(kRegSp));
      if (fault != Edm::kNone) return trap(fault);
      if (ins.op == Opcode::kLdw) {
        std::uint32_t value = 0;
        if (is_uncached(addr)) {
          value = mem.read_raw(addr);
        } else {
          const CacheAccess access = cache.read_word(addr, mem);
          if (access.fault != Edm::kNone) return trap(access.fault);
          value = access.value;
        }
        state_.mdr = value;
        write_reg(ins.rd, value);
      } else {
        const std::uint32_t value = reg(ins.rd);
        state_.mdr = value;
        if (is_uncached(addr)) {
          mem.write_raw(addr, value);
        } else {
          const CacheAccess access = cache.write_word(addr, value, mem);
          if (access.fault != Edm::kNone) return trap(access.fault);
        }
      }
      break;
    }

    case Opcode::kCmp:
    case Opcode::kCmpi: {
      const auto a = static_cast<std::int32_t>(reg(ins.ra));
      const auto b = ins.op == Opcode::kCmp
                         ? static_cast<std::int32_t>(reg(ins.rb))
                         : ins.imm;
      state_.psr.z = a == b;
      state_.psr.n = a < b;
      state_.psr.c = static_cast<std::uint32_t>(a) <
                     static_cast<std::uint32_t>(b);
      std::int32_t diff = 0;
      state_.psr.v = sub_overflows(a, b, &diff);
      break;
    }
    case Opcode::kFcmp: {
      const float a = util::bits_to_float(reg(ins.ra));
      const float b = util::bits_to_float(reg(ins.rb));
      if (std::isnan(a) || std::isnan(b)) {
        return trap(Edm::kIllegalOperation);
      }
      state_.psr.z = a == b;
      state_.psr.n = a < b;
      state_.psr.c = false;
      state_.psr.v = false;
      break;
    }

    case Opcode::kFadd:
    case Opcode::kFsub:
    case Opcode::kFmul:
    case Opcode::kFdiv: {
      const float a = util::bits_to_float(reg(ins.ra));
      const float b = util::bits_to_float(reg(ins.rb));
      const char symbol = ins.op == Opcode::kFadd   ? '+'
                          : ins.op == Opcode::kFsub ? '-'
                          : ins.op == Opcode::kFmul ? '*'
                                                    : '/';
      const Edm fault = float_op(a, b, symbol);
      if (fault != Edm::kNone) return trap(fault);
      break;
    }
    case Opcode::kFneg:
      int_result(reg(ins.ra) ^ 0x80000000u);
      break;
    case Opcode::kFabs:
      int_result(reg(ins.ra) & 0x7fffffffu);
      break;
    case Opcode::kItof: {
      const auto a = static_cast<std::int32_t>(reg(ins.ra));
      int_result(util::float_to_bits(static_cast<float>(a)));
      break;
    }
    case Opcode::kFtoi: {
      const float a = util::bits_to_float(reg(ins.ra));
      if (illegal_operand(a)) return trap(Edm::kIllegalOperation);
      if (a >= 2147483648.0f || a < -2147483648.0f) {
        return trap(Edm::kOverflowCheck);
      }
      int_result(static_cast<std::uint32_t>(static_cast<std::int32_t>(a)));
      break;
    }

    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBle:
    case Opcode::kBgt: {
      bool taken = false;
      switch (ins.op) {
        case Opcode::kBeq: taken = state_.psr.z; break;
        case Opcode::kBne: taken = !state_.psr.z; break;
        case Opcode::kBlt: taken = state_.psr.n; break;
        case Opcode::kBge: taken = !state_.psr.n; break;
        case Opcode::kBle: taken = state_.psr.n || state_.psr.z; break;
        case Opcode::kBgt: taken = !(state_.psr.n || state_.psr.z); break;
        default: break;
      }
      if (taken) {
        const std::uint32_t target =
            state_.pc + static_cast<std::uint32_t>(ins.imm * 4);
        const Edm fault = branch_to(target);
        if (fault != Edm::kNone) return trap(fault);
      }
      break;
    }
    case Opcode::kJmp: {
      const Edm fault =
          branch_to(static_cast<std::uint32_t>(ins.imm) * 4);
      if (fault != Edm::kNone) return trap(fault);
      break;
    }
    case Opcode::kJal: {
      write_reg(kRegLr, state_.pc + 4);
      const Edm fault =
          branch_to(static_cast<std::uint32_t>(ins.imm) * 4);
      if (fault != Edm::kNone) return trap(fault);
      break;
    }
    case Opcode::kJr: {
      const Edm fault = branch_to(reg(ins.ra));
      if (fault != Edm::kNone) return trap(fault);
      break;
    }
  }

  return finish(next_pc, mem, StepOutcome::Kind::kOk);
}

RunResult Cpu::run(MemoryMap& mem, DataCache& cache, std::uint64_t budget) {
  RunResult result;
  while (result.executed < budget) {
    const StepOutcome outcome = step(mem, cache);
    ++result.executed;
    switch (outcome.kind) {
      case StepOutcome::Kind::kOk:
        break;
      case StepOutcome::Kind::kYield:
        result.kind = RunResult::Kind::kYield;
        return result;
      case StepOutcome::Kind::kHalt:
        result.kind = RunResult::Kind::kHalt;
        return result;
      case StepOutcome::Kind::kTrap:
        result.kind = RunResult::Kind::kTrap;
        result.edm = outcome.edm;
        result.trap_code = outcome.trap_code;
        return result;
    }
  }
  result.kind = RunResult::Kind::kBudgetExhausted;
  return result;
}

}  // namespace earl::tvm
