// Scan chain: bit-addressable access to every state element of a Machine.
//
// The paper's SCIFI technique (Scan-Chain Implemented Fault Injection) halts
// the CPU at an instruction boundary, reads the scan chains, inverts the bit
// corresponding to the fault location, and writes the chain back.  This
// class provides exactly that interface over the TVM: a stable enumeration
// of every state element (registers, PC, PSR, pipeline latches, signature
// register, and all cache data/tag/valid/dirty[/parity] bits), a flat bit
// address space over them, and read/write/flip operations.
//
// The element order is fixed — register-partition elements first, then the
// cache partition — so a flat bit index below `register_bits()` is a
// "Registers" fault location and anything above is a "Cache" fault location,
// the same two-way split the paper's Tables 2 and 3 report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tvm/cpu.hpp"

namespace earl::tvm {

enum class ScanUnit : std::uint8_t {
  kGpr,          // r1..r15 (r0 is hardwired zero, not a state element)
  kPc,
  kIr,
  kMar,
  kMdr,
  kEx,
  kSig,
  kPsr,
  kCacheData,    // index = line, subindex = word
  kCacheTag,     // index = line
  kCacheValid,   // index = line
  kCacheDirty,   // index = line
  kCacheParity,  // index = line, subindex = word (parity-enabled caches only)
};

struct ScanElement {
  ScanUnit unit;
  unsigned index = 0;
  unsigned subindex = 0;
  unsigned width = 0;       // bits
  std::size_t offset = 0;   // flat address of this element's bit 0
  std::string name;
};

class ScanChain {
 public:
  /// The enumeration depends only on the cache configuration, so a single
  /// ScanChain serves every Machine built with the same CacheConfig.
  explicit ScanChain(CacheConfig cache_config = {});

  const std::vector<ScanElement>& elements() const { return elements_; }
  std::size_t total_bits() const { return total_bits_; }
  std::size_t register_bits() const { return register_bits_; }
  std::size_t cache_bits() const { return total_bits_ - register_bits_; }

  bool is_cache_bit(std::size_t flat_bit) const {
    return flat_bit >= register_bits_;
  }

  bool read_bit(const Machine& m, std::size_t flat_bit) const;
  void write_bit(Machine& m, std::size_t flat_bit, bool value) const;
  void flip_bit(Machine& m, std::size_t flat_bit) const;

  /// Full state read-out, packed 64 bits per word; two snapshots compare
  /// equal iff every scannable state element matches (the latent/overwritten
  /// distinction in the analysis phase).
  std::vector<std::uint64_t> snapshot(const Machine& m) const;

  /// Human-readable location, e.g. "r5[12]" or "cache.data[3][2][7]".
  std::string describe_bit(std::size_t flat_bit) const;

 private:
  const ScanElement& element_at(std::size_t flat_bit, unsigned* bit) const;
  std::uint32_t read_element(const Machine& m, const ScanElement& e) const;
  void write_element(Machine& m, const ScanElement& e,
                     std::uint32_t value) const;

  std::vector<ScanElement> elements_;
  std::size_t total_bits_ = 0;
  std::size_t register_bits_ = 0;
};

}  // namespace earl::tvm
