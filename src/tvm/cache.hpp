// 128-byte write-back data cache.
//
// Mirrors the structural role of Thor's 128-byte in-pipeline data cache: a
// small cache whose *contents are part of the CPU's fault space*.  Bit-flips
// in the data bits of a resident dirty line corrupt program variables
// without any hardware mechanism noticing — the escape path behind the
// paper's severe value failures.
//
// Geometry: 8 direct-mapped lines x 16 bytes (4 words); write-back,
// write-allocate.  Only the data RAM and stack regions are cacheable.
//
// Optional word parity models the paper's Section 4.3 alternative ("a parity
// protected cache"): one parity bit per cached word, checked on every read
// hit; a mismatch raises DATA ERROR.  The parity bits themselves join the
// fault space when enabled (a flipped parity bit causes a false-positive
// detection, exactly as in hardware).
#pragma once

#include <array>
#include <cstdint>

#include "tvm/edm.hpp"
#include "tvm/memory.hpp"

namespace earl::tvm {

inline constexpr unsigned kCacheLines = 8;
inline constexpr unsigned kWordsPerLine = 4;
inline constexpr unsigned kLineBytes = kWordsPerLine * 4;
inline constexpr unsigned kCacheBytes = kCacheLines * kLineBytes;
inline constexpr unsigned kTagBits = 11;  // 18-bit address space, 7 line bits

struct CacheConfig {
  bool parity_enabled = false;
};

struct CacheAccess {
  std::uint32_t value = 0;
  Edm fault = Edm::kNone;
  bool hit = false;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
};

class DataCache {
 public:
  explicit DataCache(CacheConfig config = {});

  /// Word read through the cache; fills on miss (evicting and writing back
  /// the victim).  `addr` is word-aligned and permission-checked.  Returns a
  /// DATA ERROR fault when a poisoned memory word is filled or when parity
  /// checking fails, and a BUS/ADDRESS ERROR when a victim's write-back
  /// address (reconstructed from its — possibly corrupted — tag) does not
  /// point at cacheable memory: a flipped tag bit makes the write-back bus
  /// transaction target a bogus address, which the bus interface detects.
  CacheAccess read_word(std::uint32_t addr, MemoryMap& mem);

  /// Word write through the cache (write-allocate).
  CacheAccess write_word(std::uint32_t addr, std::uint32_t value,
                         MemoryMap& mem);

  /// Writes back every dirty line (keeps them resident).
  void flush(MemoryMap& mem);

  /// Invalidates all lines without writing back (power-on state).
  void invalidate_all();

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  /// Zeroes the hit/miss/writeback counters without touching cache state.
  /// Checkpoint restore copies a whole Machine (stats included) and then
  /// clears them so profiles count only the work actually executed.
  void clear_stats() { stats_ = CacheStats{}; }

  /// True when `addr` currently hits in the cache (no state change).
  bool probe(std::uint32_t addr) const;

  /// True when every line (tag, valid, dirty, data, parity) matches
  /// `other`.  Statistics counters are bookkeeping, not machine state, and
  /// are excluded — equal lines mean future accesses behave identically.
  bool state_equals(const DataCache& other) const {
    return lines_ == other.lines_;
  }

  // --- Scan-chain access (raw state elements; no side effects) ------------
  std::uint32_t data_word(unsigned line, unsigned word) const;
  void set_data_word(unsigned line, unsigned word, std::uint32_t value);
  std::uint32_t tag(unsigned line) const;
  void set_tag(unsigned line, std::uint32_t value);
  bool valid(unsigned line) const;
  void set_valid(unsigned line, bool v);
  bool dirty(unsigned line) const;
  void set_dirty(unsigned line, bool v);
  bool parity_bit(unsigned line, unsigned word) const;
  void set_parity_bit(unsigned line, unsigned word, bool v);

 private:
  struct Line {
    std::array<std::uint32_t, kWordsPerLine> words{};
    std::uint32_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::array<bool, kWordsPerLine> parity{};

    bool operator==(const Line&) const = default;
  };

  static unsigned index_of(std::uint32_t addr) { return (addr >> 4) & 7u; }
  static std::uint32_t tag_of(std::uint32_t addr) {
    return (addr >> 7) & ((1u << kTagBits) - 1u);
  }
  static std::uint32_t line_base_address(std::uint32_t tag, unsigned index) {
    return (tag << 7) | (index << 4);
  }

  /// Ensures the line containing `addr` is resident; returns DATA ERROR if a
  /// poisoned word was filled, or the victim write-back's fault.
  Edm fill(std::uint32_t addr, MemoryMap& mem);
  Edm write_back(unsigned index, MemoryMap& mem);

  CacheConfig config_;
  std::array<Line, kCacheLines> lines_;
  CacheStats stats_;
};

}  // namespace earl::tvm
