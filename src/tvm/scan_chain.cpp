#include "tvm/scan_chain.hpp"

#include <cstdio>

#include "util/bitops.hpp"

namespace earl::tvm {

namespace {

std::uint32_t pack_psr(const Psr& psr) {
  std::uint32_t v = 0;
  v |= psr.n ? 1u : 0u;
  v |= psr.z ? 2u : 0u;
  v |= psr.c ? 4u : 0u;
  v |= psr.v ? 8u : 0u;
  v |= psr.user_mode ? 16u : 0u;
  return v;
}

Psr unpack_psr(std::uint32_t v) {
  Psr psr;
  psr.n = (v & 1u) != 0;
  psr.z = (v & 2u) != 0;
  psr.c = (v & 4u) != 0;
  psr.v = (v & 8u) != 0;
  psr.user_mode = (v & 16u) != 0;
  return psr;
}

std::string element_name(ScanUnit unit, unsigned index, unsigned subindex) {
  char buf[48];
  switch (unit) {
    case ScanUnit::kGpr:
      std::snprintf(buf, sizeof buf, "r%u", index);
      break;
    case ScanUnit::kPc: return "pc";
    case ScanUnit::kIr: return "ir";
    case ScanUnit::kMar: return "mar";
    case ScanUnit::kMdr: return "mdr";
    case ScanUnit::kEx: return "ex";
    case ScanUnit::kSig: return "sig";
    case ScanUnit::kPsr: return "psr";
    case ScanUnit::kCacheData:
      std::snprintf(buf, sizeof buf, "cache.data[%u][%u]", index, subindex);
      break;
    case ScanUnit::kCacheTag:
      std::snprintf(buf, sizeof buf, "cache.tag[%u]", index);
      break;
    case ScanUnit::kCacheValid:
      std::snprintf(buf, sizeof buf, "cache.valid[%u]", index);
      break;
    case ScanUnit::kCacheDirty:
      std::snprintf(buf, sizeof buf, "cache.dirty[%u]", index);
      break;
    case ScanUnit::kCacheParity:
      std::snprintf(buf, sizeof buf, "cache.parity[%u][%u]", index, subindex);
      break;
  }
  return buf;
}

}  // namespace

ScanChain::ScanChain(CacheConfig cache_config) {
  auto add = [&](ScanUnit unit, unsigned index, unsigned subindex,
                 unsigned width) {
    ScanElement e;
    e.unit = unit;
    e.index = index;
    e.subindex = subindex;
    e.width = width;
    e.offset = total_bits_;
    e.name = element_name(unit, index, subindex);
    total_bits_ += width;
    elements_.push_back(std::move(e));
  };

  // --- Register partition --------------------------------------------------
  for (unsigned r = 1; r < kNumRegs; ++r) add(ScanUnit::kGpr, r, 0, 32);
  add(ScanUnit::kPc, 0, 0, 32);
  add(ScanUnit::kIr, 0, 0, 32);
  add(ScanUnit::kMar, 0, 0, 32);
  add(ScanUnit::kMdr, 0, 0, 32);
  add(ScanUnit::kEx, 0, 0, 32);
  add(ScanUnit::kSig, 0, 0, 16);
  add(ScanUnit::kPsr, 0, 0, 5);
  register_bits_ = total_bits_;

  // --- Cache partition ------------------------------------------------------
  for (unsigned line = 0; line < kCacheLines; ++line) {
    for (unsigned word = 0; word < kWordsPerLine; ++word) {
      add(ScanUnit::kCacheData, line, word, 32);
    }
  }
  for (unsigned line = 0; line < kCacheLines; ++line) {
    add(ScanUnit::kCacheTag, line, 0, kTagBits);
  }
  for (unsigned line = 0; line < kCacheLines; ++line) {
    add(ScanUnit::kCacheValid, line, 0, 1);
  }
  for (unsigned line = 0; line < kCacheLines; ++line) {
    add(ScanUnit::kCacheDirty, line, 0, 1);
  }
  if (cache_config.parity_enabled) {
    for (unsigned line = 0; line < kCacheLines; ++line) {
      for (unsigned word = 0; word < kWordsPerLine; ++word) {
        add(ScanUnit::kCacheParity, line, word, 1);
      }
    }
  }
}

const ScanElement& ScanChain::element_at(std::size_t flat_bit,
                                         unsigned* bit) const {
  // Binary search over element offsets.
  std::size_t lo = 0;
  std::size_t hi = elements_.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (elements_[mid].offset <= flat_bit) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const ScanElement& e = elements_[lo];
  *bit = static_cast<unsigned>(flat_bit - e.offset);
  return e;
}

std::uint32_t ScanChain::read_element(const Machine& m,
                                      const ScanElement& e) const {
  const CpuState& s = m.cpu.state();
  switch (e.unit) {
    case ScanUnit::kGpr: return s.regs[e.index];
    case ScanUnit::kPc: return s.pc;
    case ScanUnit::kIr: return s.ir;
    case ScanUnit::kMar: return s.mar;
    case ScanUnit::kMdr: return s.mdr;
    case ScanUnit::kEx: return s.ex;
    case ScanUnit::kSig: return s.sig;
    case ScanUnit::kPsr: return pack_psr(s.psr);
    case ScanUnit::kCacheData: return m.cache.data_word(e.index, e.subindex);
    case ScanUnit::kCacheTag: return m.cache.tag(e.index);
    case ScanUnit::kCacheValid: return m.cache.valid(e.index) ? 1u : 0u;
    case ScanUnit::kCacheDirty: return m.cache.dirty(e.index) ? 1u : 0u;
    case ScanUnit::kCacheParity:
      return m.cache.parity_bit(e.index, e.subindex) ? 1u : 0u;
  }
  return 0;
}

void ScanChain::write_element(Machine& m, const ScanElement& e,
                              std::uint32_t value) const {
  CpuState& s = m.cpu.mutable_state();
  switch (e.unit) {
    case ScanUnit::kGpr: s.regs[e.index] = value; break;
    case ScanUnit::kPc: s.pc = value; break;
    case ScanUnit::kIr: s.ir = value; break;
    case ScanUnit::kMar: s.mar = value; break;
    case ScanUnit::kMdr: s.mdr = value; break;
    case ScanUnit::kEx: s.ex = value; break;
    case ScanUnit::kSig: s.sig = static_cast<std::uint16_t>(value); break;
    case ScanUnit::kPsr: s.psr = unpack_psr(value); break;
    case ScanUnit::kCacheData:
      m.cache.set_data_word(e.index, e.subindex, value);
      break;
    case ScanUnit::kCacheTag: m.cache.set_tag(e.index, value); break;
    case ScanUnit::kCacheValid: m.cache.set_valid(e.index, value != 0); break;
    case ScanUnit::kCacheDirty: m.cache.set_dirty(e.index, value != 0); break;
    case ScanUnit::kCacheParity:
      m.cache.set_parity_bit(e.index, e.subindex, value != 0);
      break;
  }
}

bool ScanChain::read_bit(const Machine& m, std::size_t flat_bit) const {
  unsigned bit = 0;
  const ScanElement& e = element_at(flat_bit, &bit);
  return util::get_bit32(read_element(m, e), bit);
}

void ScanChain::write_bit(Machine& m, std::size_t flat_bit, bool value) const {
  unsigned bit = 0;
  const ScanElement& e = element_at(flat_bit, &bit);
  write_element(m, e, util::set_bit32(read_element(m, e), bit, value));
}

void ScanChain::flip_bit(Machine& m, std::size_t flat_bit) const {
  unsigned bit = 0;
  const ScanElement& e = element_at(flat_bit, &bit);
  write_element(m, e, util::flip_bit32(read_element(m, e), bit));
}

std::vector<std::uint64_t> ScanChain::snapshot(const Machine& m) const {
  std::vector<std::uint64_t> packed((total_bits_ + 63) / 64, 0);
  for (const ScanElement& e : elements_) {
    const std::uint32_t value = read_element(m, e);
    for (unsigned bit = 0; bit < e.width; ++bit) {
      if (util::get_bit32(value, bit)) {
        const std::size_t flat = e.offset + bit;
        packed[flat / 64] |= std::uint64_t{1} << (flat % 64);
      }
    }
  }
  return packed;
}

std::string ScanChain::describe_bit(std::size_t flat_bit) const {
  unsigned bit = 0;
  const ScanElement& e = element_at(flat_bit, &bit);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s[%u]", e.name.c_str(), bit);
  return buf;
}

}  // namespace earl::tvm
