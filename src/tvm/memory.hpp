// Physical memory map of the TVM node.
//
// Layout (byte addresses, all accesses word-aligned):
//   0x00000000 .. 0x00000FFF   null guard page  -> ACCESS CHECK on data use
//   0x00001000 .. 0x00001FFF   code ROM (1024 instructions), execute-only
//   0x00010000 .. 0x000103FF   data RAM (1 KiB), cacheable
//   0x00020000 .. 0x000203FF   task stack (1 KiB), cacheable; user-mode
//                              accesses below SP raise STORAGE ERROR
//   0x00018000 .. 0x0001803F   memory-mapped I/O (uncached): controller
//                              inputs/outputs exchanged with the environment
//                              simulator each iteration
//   anything else              -> BUS ERROR (bus time-out)
//
// The data RAM base and stack base share the same cache index bits on
// purpose: the controller's state variables and its call frames alias in the
// 128-byte data cache, so lines are periodically evicted and written back —
// the residency pattern the paper's cache results depend on.
//
// Code ROM is not part of the fault space (the paper injects CPU state
// elements only; program memory on the Thor board is EDAC-protected), but
// words of RAM can be marked "poisoned" to model an uncorrectable memory
// error, which raises DATA ERROR when read — the mechanism's detection path
// is exercised by tests and by memory-fault campaigns.
#pragma once

#include <cstdint>
#include <vector>

#include "tvm/edm.hpp"

namespace earl::tvm {

inline constexpr std::uint32_t kNullGuardSize = 0x1000;
inline constexpr std::uint32_t kCodeBase = 0x00001000;
inline constexpr std::uint32_t kCodeSize = 0x1000;  // 1024 instructions
inline constexpr std::uint32_t kDataBase = 0x00010000;
inline constexpr std::uint32_t kDataSize = 0x400;
inline constexpr std::uint32_t kStackBase = 0x00020000;
inline constexpr std::uint32_t kStackSize = 0x400;
inline constexpr std::uint32_t kStackTop = kStackBase + kStackSize;
// Placed below 2^17 so the whole I/O block is absolute-addressable through
// an 18-bit signed displacement off r0.
inline constexpr std::uint32_t kIoBase = 0x00018000;
inline constexpr std::uint32_t kIoSize = 0x40;

/// Well-known I/O register offsets used by the controller workloads.
inline constexpr std::uint32_t kIoInRef = kIoBase + 0x00;    // input r
inline constexpr std::uint32_t kIoInMeas = kIoBase + 0x04;   // input y
inline constexpr std::uint32_t kIoOutU = kIoBase + 0x08;     // output u_lim
inline constexpr std::uint32_t kIoOutDebug = kIoBase + 0x0C; // scratch

enum class Region : std::uint8_t {
  kNullGuard,
  kCode,
  kData,
  kStack,
  kIo,
  kUnmapped,
};

enum class AccessKind : std::uint8_t { kFetch, kLoad, kStore };

Region classify_address(std::uint32_t addr);

/// Result of an access-permission check: kNone means the access is allowed.
Edm check_access(std::uint32_t addr, AccessKind kind, bool user_mode,
                 std::uint32_t sp);

/// True when loads/stores to this address bypass the data cache.
inline bool is_uncached(std::uint32_t addr) {
  return classify_address(addr) == Region::kIo;
}

class MemoryMap {
 public:
  MemoryMap();

  /// Loads a program image into code ROM. Truncates silently at ROM size is
  /// a bug, so images larger than ROM are rejected (returns false).
  bool load_code(const std::vector<std::uint32_t>& words);

  /// Initializes data RAM contents (the workload's initial data image).
  bool load_data(const std::vector<std::uint32_t>& words);

  /// Raw backing-store access used by the cache for fills and write-backs
  /// and by the CPU for uncached regions.  `addr` must be word-aligned and
  /// already permission-checked; unmapped addresses return 0 / are ignored.
  std::uint32_t read_raw(std::uint32_t addr) const;
  void write_raw(std::uint32_t addr, std::uint32_t value);

  /// Instruction fetch (code ROM only; caller has permission-checked).
  std::uint32_t fetch(std::uint32_t addr) const;

  /// Models an uncorrectable memory error in a RAM/stack word: reads of a
  /// poisoned word raise DATA ERROR (see Cpu). Writes clear the poison.
  void poison_word(std::uint32_t addr);
  bool is_poisoned(std::uint32_t addr) const;

  /// Resets RAM, stack and I/O to the images supplied at load time (code is
  /// immutable).  Poison marks are cleared.
  void reset();

  std::size_t code_words() const { return code_image_.size(); }

  /// True when every mutable word (RAM, stack, I/O, poison marks) matches
  /// `other`.  Code ROM is immutable after load and both operands of the
  /// only caller (checkpoint-convergence detection) share one program, so
  /// it is excluded.  Equal mutable state means future accesses behave
  /// identically.
  bool state_equals(const MemoryMap& other) const {
    return data_ == other.data_ && stack_ == other.stack_ &&
           io_ == other.io_ && data_poison_ == other.data_poison_ &&
           stack_poison_ == other.stack_poison_;
  }

 private:
  std::vector<std::uint32_t> code_;
  std::vector<std::uint32_t> code_image_;
  std::vector<std::uint32_t> data_;
  std::vector<std::uint32_t> data_image_;
  std::vector<std::uint32_t> stack_;
  std::vector<std::uint32_t> io_;
  std::vector<bool> data_poison_;
  std::vector<bool> stack_poison_;
};

}  // namespace earl::tvm
