#include "tvm/isa.hpp"

#include <array>
#include <cstdio>

#include "util/bitops.hpp"

namespace earl::tvm {

namespace {

constexpr OpcodeInfo kInvalid{"<invalid>", Format::kNone, false, false};

std::array<OpcodeInfo, 64> build_table() {
  std::array<OpcodeInfo, 64> t;
  t.fill(kInvalid);
  auto set = [&](Opcode op, const char* name, Format f, bool priv = false) {
    t[static_cast<std::uint8_t>(op)] = OpcodeInfo{name, f, priv, true};
  };
  set(Opcode::kNop, "nop", Format::kNone);
  set(Opcode::kHalt, "halt", Format::kNone, /*priv=*/true);
  set(Opcode::kYield, "yield", Format::kNone);
  set(Opcode::kSig, "sig", Format::kSig);
  set(Opcode::kTrap, "trap", Format::kTrap);
  set(Opcode::kAdd, "add", Format::kR);
  set(Opcode::kSub, "sub", Format::kR);
  set(Opcode::kMul, "mul", Format::kR);
  set(Opcode::kDivs, "divs", Format::kR);
  set(Opcode::kAnd, "and", Format::kR);
  set(Opcode::kOr, "or", Format::kR);
  set(Opcode::kXor, "xor", Format::kR);
  set(Opcode::kSll, "sll", Format::kR);
  set(Opcode::kSrl, "srl", Format::kR);
  set(Opcode::kSra, "sra", Format::kR);
  set(Opcode::kAddi, "addi", Format::kI);
  set(Opcode::kOri, "ori", Format::kI);
  set(Opcode::kAndi, "andi", Format::kI);
  set(Opcode::kXori, "xori", Format::kI);
  set(Opcode::kMovi, "movi", Format::kI);
  set(Opcode::kMovhi, "movhi", Format::kI);
  set(Opcode::kLdw, "ldw", Format::kMem);
  set(Opcode::kStw, "stw", Format::kMem);
  set(Opcode::kCmp, "cmp", Format::kR);
  set(Opcode::kCmpi, "cmpi", Format::kI);
  set(Opcode::kFcmp, "fcmp", Format::kR);
  set(Opcode::kFadd, "fadd", Format::kR);
  set(Opcode::kFsub, "fsub", Format::kR);
  set(Opcode::kFmul, "fmul", Format::kR);
  set(Opcode::kFdiv, "fdiv", Format::kR);
  set(Opcode::kFneg, "fneg", Format::kRTwo);
  set(Opcode::kFabs, "fabs", Format::kRTwo);
  set(Opcode::kItof, "itof", Format::kRTwo);
  set(Opcode::kFtoi, "ftoi", Format::kRTwo);
  set(Opcode::kBeq, "beq", Format::kI);
  set(Opcode::kBne, "bne", Format::kI);
  set(Opcode::kBlt, "blt", Format::kI);
  set(Opcode::kBge, "bge", Format::kI);
  set(Opcode::kBle, "ble", Format::kI);
  set(Opcode::kBgt, "bgt", Format::kI);
  set(Opcode::kJmp, "jmp", Format::kJ);
  set(Opcode::kJal, "jal", Format::kJ);
  set(Opcode::kJr, "jr", Format::kRTwo);
  return t;
}

const std::array<OpcodeInfo, 64>& table() {
  static const std::array<OpcodeInfo, 64> t = build_table();
  return t;
}

}  // namespace

const OpcodeInfo& opcode_info(std::uint8_t opcode) {
  return table()[opcode & 0x3f];
}

const OpcodeInfo& opcode_info(Opcode op) {
  return opcode_info(static_cast<std::uint8_t>(op));
}

std::uint32_t encode(const Instruction& ins) {
  const std::uint32_t op6 =
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(ins.op) & 0x3f);
  std::uint32_t word = op6 << 26;
  const auto& info = opcode_info(ins.op);
  switch (info.format) {
    case Format::kNone:
      break;
    case Format::kR:
      word |= (ins.rd & 0xf) << 22;
      word |= (ins.ra & 0xf) << 18;
      word |= (ins.rb & 0xf) << 14;
      break;
    case Format::kRTwo:
      word |= (ins.rd & 0xf) << 22;
      word |= (ins.ra & 0xf) << 18;
      break;
    case Format::kI:
    case Format::kMem:
      word |= (ins.rd & 0xf) << 22;
      word |= (ins.ra & 0xf) << 18;
      word |= static_cast<std::uint32_t>(ins.imm) & 0x3ffff;
      break;
    case Format::kJ:
      word |= static_cast<std::uint32_t>(ins.imm) & 0x3ffffff;
      break;
    case Format::kSig:
      word |= static_cast<std::uint32_t>(ins.imm) & 0xffff;
      break;
    case Format::kTrap:
      word |= static_cast<std::uint32_t>(ins.imm) & 0xff;
      break;
  }
  return word;
}

std::optional<Instruction> decode(std::uint32_t word) {
  const std::uint8_t op6 = static_cast<std::uint8_t>(word >> 26);
  const auto& info = opcode_info(op6);
  if (!info.valid) return std::nullopt;

  Instruction ins;
  ins.op = static_cast<Opcode>(op6);
  switch (info.format) {
    case Format::kNone:
      break;
    case Format::kR:
      ins.rd = util::bits32(word, 22, 4);
      ins.ra = util::bits32(word, 18, 4);
      ins.rb = util::bits32(word, 14, 4);
      break;
    case Format::kRTwo:
      ins.rd = util::bits32(word, 22, 4);
      ins.ra = util::bits32(word, 18, 4);
      break;
    case Format::kI:
    case Format::kMem:
      ins.rd = util::bits32(word, 22, 4);
      ins.ra = util::bits32(word, 18, 4);
      switch (ins.op) {
        case Opcode::kOri:
        case Opcode::kAndi:
        case Opcode::kXori:
        case Opcode::kMovhi:
          // Logical immediates are zero-extended.
          ins.imm = static_cast<std::int32_t>(util::bits32(word, 0, 18));
          break;
        default:
          ins.imm = util::sign_extend32(word, 18);
          break;
      }
      break;
    case Format::kJ:
      ins.imm = static_cast<std::int32_t>(util::bits32(word, 0, 26));
      break;
    case Format::kSig:
      ins.imm = static_cast<std::int32_t>(util::bits32(word, 0, 16));
      break;
    case Format::kTrap:
      ins.imm = static_cast<std::int32_t>(util::bits32(word, 0, 8));
      break;
  }
  return ins;
}

std::string disassemble(std::uint32_t word) {
  const auto decoded = decode(word);
  char buf[64];
  if (!decoded) {
    std::snprintf(buf, sizeof buf, ".word 0x%08x  ; invalid", word);
    return buf;
  }
  const Instruction& i = *decoded;
  const char* m = opcode_info(i.op).mnemonic;
  switch (opcode_info(i.op).format) {
    case Format::kNone:
      std::snprintf(buf, sizeof buf, "%s", m);
      break;
    case Format::kR:
      if (i.op == Opcode::kCmp || i.op == Opcode::kFcmp) {
        std::snprintf(buf, sizeof buf, "%s r%u, r%u", m, i.ra, i.rb);
      } else {
        std::snprintf(buf, sizeof buf, "%s r%u, r%u, r%u", m, i.rd, i.ra,
                      i.rb);
      }
      break;
    case Format::kRTwo:
      if (i.op == Opcode::kJr) {
        std::snprintf(buf, sizeof buf, "%s r%u", m, i.ra);
      } else {
        std::snprintf(buf, sizeof buf, "%s r%u, r%u", m, i.rd, i.ra);
      }
      break;
    case Format::kI:
      if (i.op == Opcode::kCmpi) {
        std::snprintf(buf, sizeof buf, "%s r%u, %d", m, i.ra, i.imm);
      } else if (i.op == Opcode::kMovi || i.op == Opcode::kMovhi) {
        std::snprintf(buf, sizeof buf, "%s r%u, %d", m, i.rd, i.imm);
      } else if (i.op >= Opcode::kBeq && i.op <= Opcode::kBgt) {
        std::snprintf(buf, sizeof buf, "%s %+d", m, i.imm);
      } else {
        std::snprintf(buf, sizeof buf, "%s r%u, r%u, %d", m, i.rd, i.ra,
                      i.imm);
      }
      break;
    case Format::kMem:
      if (i.op == Opcode::kLdw) {
        std::snprintf(buf, sizeof buf, "%s r%u, [r%u%+d]", m, i.rd, i.ra,
                      i.imm);
      } else {
        std::snprintf(buf, sizeof buf, "%s r%u, [r%u%+d]", m, i.rd, i.ra,
                      i.imm);
      }
      break;
    case Format::kJ:
      std::snprintf(buf, sizeof buf, "%s 0x%x", m,
                    static_cast<unsigned>(i.imm) * 4);
      break;
    case Format::kSig:
      std::snprintf(buf, sizeof buf, "%s 0x%04x", m,
                    static_cast<unsigned>(i.imm));
      break;
    case Format::kTrap:
      std::snprintf(buf, sizeof buf, "%s %d", m, i.imm);
      break;
  }
  return buf;
}

bool is_control_transfer(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBle:
    case Opcode::kBgt:
    case Opcode::kJmp:
    case Opcode::kJal:
    case Opcode::kJr:
      return true;
    default:
      return false;
  }
}

}  // namespace earl::tvm
