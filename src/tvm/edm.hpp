// Error-detection mechanisms (EDMs) of the TVM node, mirroring Table 1 of
// the paper (the Thor CPU's mechanisms) plus a watchdog.  A raised EDM is a
// *detected error*: the node stops producing outputs (fail-stop / strong
// failure semantics), which in the fault-injection protocol terminates the
// experiment.
#pragma once

#include <cstdint>
#include <string_view>

namespace earl::tvm {

enum class Edm : std::uint8_t {
  kNone = 0,
  kBusError,          // access to unmapped physical memory (bus time-out)
  kAddressError,      // unaligned access or access to protected memory
  kInstructionError,  // undefined opcode / privileged op in user mode
  kJumpError,         // control transfer outside the code address space
  kConstraintError,   // software-raised runtime constraint trap
  kAccessCheck,       // null-pointer dereference (low guard page)
  kStorageError,      // user-mode access outside the task stack
  kOverflowCheck,     // signed integer / float overflow
  kUnderflowCheck,    // float underflow or denormalized result
  kDivisionCheck,     // integer divide by zero, float divide by +-0
  kIllegalOperation,  // float op with NaN/Inf operand or invalid result
  kDataError,         // uncorrectable error in data read from memory
  kControlFlowError,  // basic-block signature mismatch
  kComparatorError,   // master/slave lockstep mismatch
  kWatchdog,          // iteration instruction budget exceeded
  kCount,             // sentinel
};

inline constexpr std::size_t kEdmCount = static_cast<std::size_t>(Edm::kCount);

constexpr std::string_view edm_name(Edm e) {
  switch (e) {
    case Edm::kNone: return "None";
    case Edm::kBusError: return "Bus Error";
    case Edm::kAddressError: return "Address Error";
    case Edm::kInstructionError: return "Instruction Error";
    case Edm::kJumpError: return "Jump Error";
    case Edm::kConstraintError: return "Constraint Check";
    case Edm::kAccessCheck: return "Access Check";
    case Edm::kStorageError: return "Storage Error";
    case Edm::kOverflowCheck: return "Overflow";
    case Edm::kUnderflowCheck: return "Underflow";
    case Edm::kDivisionCheck: return "Division Check";
    case Edm::kIllegalOperation: return "Illegal Operation";
    case Edm::kDataError: return "Data Error";
    case Edm::kControlFlowError: return "Control Flow Error";
    case Edm::kComparatorError: return "Master/Slave Comparator";
    case Edm::kWatchdog: return "Watchdog";
    case Edm::kCount: break;
  }
  return "Unknown";
}

}  // namespace earl::tvm
