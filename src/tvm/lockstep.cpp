#include "tvm/lockstep.hpp"

#include "tvm/assembler.hpp"

namespace earl::tvm {

bool LockstepPair::load(const AssembledProgram& program) {
  if (!load_program(program, master_.mem)) return false;
  if (!load_program(program, slave_.mem)) return false;
  entry_ = program.entry;
  reset(entry_);
  return true;
}

void LockstepPair::reset(std::uint32_t entry) {
  entry_ = entry;
  master_.reset(entry);
  slave_.reset(entry);
}

bool LockstepPair::bus_state_matches() const {
  const CpuState& a = master_.cpu.state();
  const CpuState& b = slave_.cpu.state();
  return a.pc == b.pc && a.mar == b.mar && a.mdr == b.mdr && a.ex == b.ex;
}

StepOutcome LockstepPair::step() {
  const StepOutcome ma = master_.step();
  const StepOutcome sa = slave_.step();
  if (ma.kind != sa.kind || ma.edm != sa.edm || !bus_state_matches()) {
    return StepOutcome{StepOutcome::Kind::kTrap, Edm::kComparatorError, 0};
  }
  return ma;
}

RunResult LockstepPair::run(std::uint64_t budget) {
  RunResult result;
  while (result.executed < budget) {
    const StepOutcome outcome = step();
    ++result.executed;
    switch (outcome.kind) {
      case StepOutcome::Kind::kOk:
        break;
      case StepOutcome::Kind::kYield:
        result.kind = RunResult::Kind::kYield;
        return result;
      case StepOutcome::Kind::kHalt:
        result.kind = RunResult::Kind::kHalt;
        return result;
      case StepOutcome::Kind::kTrap:
        result.kind = RunResult::Kind::kTrap;
        result.edm = outcome.edm;
        result.trap_code = outcome.trap_code;
        return result;
    }
  }
  return result;
}

}  // namespace earl::tvm
