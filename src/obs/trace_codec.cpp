#include "obs/trace_codec.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace earl::obs {

namespace {

// Both line kinds carry the same 8 delta fields (see the header grammar),
// ordered most-likely-nonzero first so trailing-zero suppression bites as
// early as possible.
constexpr std::size_t kFieldCount = 8;

std::uint32_t float_bits(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

float bits_float(std::uint32_t bits) {
  float v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

/// The deviation value the runner derives from output and golden_output;
/// storing only the XOR against it makes the field zero on every record the
/// runner produced (and still bit-exact on hand-built ones).
float expected_deviation(const IterationRecord& record) {
  return std::fabs(record.output - record.golden_output);
}

void append_hex(std::string& out, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%llx",
                static_cast<unsigned long long>(v));
  out += buf;
}

/// Parses one full token as an unsigned integer in `base`; nullopt on an
/// empty token, a stray character, or an over-long one.
std::optional<std::uint64_t> parse_uint(std::string_view token, int base) {
  if (token.empty() || token.size() > 20) return std::nullopt;
  char buf[24];
  std::memcpy(buf, token.data(), token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  const unsigned long long value = std::strtoull(buf, &end, base);
  if (end != buf + token.size()) return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

}  // namespace

std::optional<TraceFormat> parse_trace_format(std::string_view name) {
  if (name == "jsonl") return TraceFormat::kJsonl;
  if (name == "compact") return TraceFormat::kCompact;
  return std::nullopt;
}

std::string trace_format_slug(TraceFormat format) {
  return format == TraceFormat::kCompact ? "compact" : "jsonl";
}

std::string CompactTraceEncoder::encode(const IterationRecord& record) {
  const bool golden = record.experiment == kGoldenExperimentId;
  IterationRecord base;  // zero record when nothing to delta against
  if (golden) {
    if (!golden_.empty()) base = golden_.back();
  } else if (record.iteration < golden_.size()) {
    base = golden_[record.iteration];
  }

  std::uint64_t fields[kFieldCount];
  std::size_t n = 0;
  fields[n++] = float_bits(record.measurement) ^ float_bits(base.measurement);
  fields[n++] = float_bits(record.output) ^ float_bits(base.output);
  fields[n++] = float_bits(record.state) ^ float_bits(base.state);
  fields[n++] =
      float_bits(record.deviation) ^ float_bits(expected_deviation(record));
  fields[n++] = float_bits(record.reference) ^ float_bits(base.reference);
  // A golden record's u_golden mirrors its own output; an experiment's
  // mirrors the golden output at the same k.
  fields[n++] = float_bits(record.golden_output) ^
                float_bits(golden ? record.output : base.output);
  fields[n++] = (record.assertion_fired ? 1u : 0u) |
                (record.recovery_fired ? 2u : 0u);
  fields[n++] = record.elapsed ^ base.elapsed;

  std::size_t count = kFieldCount;
  while (count > 0 && fields[count - 1] == 0) --count;

  std::string out(golden ? "G " : "I ");
  if (!golden) {
    out += std::to_string(record.experiment);
    out.push_back(' ');
  }
  out += std::to_string(record.iteration);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(' ');
    append_hex(out, fields[i]);
  }

  if (golden) golden_.push_back(record);
  return out;
}

bool CompactTraceDecoder::is_compact_line(std::string_view line) {
  return line.size() >= 2 && (line[0] == 'G' || line[0] == 'I') &&
         line[1] == ' ';
}

std::optional<IterationRecord> CompactTraceDecoder::decode(
    std::string_view line) {
  if (!is_compact_line(line)) return std::nullopt;
  const bool golden = line[0] == 'G';
  const std::size_t header_tokens = golden ? 1u : 2u;

  // Tokenize on single spaces; empty tokens (double/trailing spaces) are
  // malformed.  The leading id/k tokens are decimal, the fields hex.
  std::uint64_t tokens[kFieldCount + 2];
  std::size_t count = 0;
  std::size_t pos = 2;
  while (pos <= line.size()) {
    const std::size_t next = line.find(' ', pos);
    const std::string_view token =
        line.substr(pos, next == std::string_view::npos ? std::string_view::npos
                                                        : next - pos);
    if (count >= header_tokens + kFieldCount) return std::nullopt;
    const std::optional<std::uint64_t> value =
        parse_uint(token, count < header_tokens ? 10 : 16);
    if (!value) return std::nullopt;
    tokens[count++] = *value;
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  if (count < header_tokens) return std::nullopt;

  std::uint64_t fields[kFieldCount] = {};
  for (std::size_t i = header_tokens; i < count; ++i) {
    fields[i - header_tokens] = tokens[i];
  }

  IterationRecord record;
  IterationRecord base;
  if (golden) {
    record.experiment = kGoldenExperimentId;
    record.iteration = static_cast<std::uint32_t>(tokens[0]);
    // Golden lines are contiguous and in order; anything else means a
    // corrupt or resequenced stream.
    if (record.iteration != golden_.size()) return std::nullopt;
    if (!golden_.empty()) base = golden_.back();
  } else {
    record.experiment = tokens[0];
    record.iteration = static_cast<std::uint32_t>(tokens[1]);
    if (record.iteration < golden_.size()) base = golden_[record.iteration];
  }

  std::size_t n = 0;
  record.measurement = bits_float(float_bits(base.measurement) ^
                                  static_cast<std::uint32_t>(fields[n++]));
  record.output = bits_float(float_bits(base.output) ^
                             static_cast<std::uint32_t>(fields[n++]));
  record.state = bits_float(float_bits(base.state) ^
                            static_cast<std::uint32_t>(fields[n++]));
  const std::uint64_t deviation_delta = fields[n++];
  record.reference = bits_float(float_bits(base.reference) ^
                                static_cast<std::uint32_t>(fields[n++]));
  record.golden_output =
      bits_float(float_bits(golden ? record.output : base.output) ^
                 static_cast<std::uint32_t>(fields[n++]));
  const std::uint64_t flags = fields[n++];
  if (flags > 3) return std::nullopt;
  record.assertion_fired = (flags & 1) != 0;
  record.recovery_fired = (flags & 2) != 0;
  record.elapsed = base.elapsed ^ fields[n++];
  record.deviation = bits_float(float_bits(expected_deviation(record)) ^
                                static_cast<std::uint32_t>(deviation_delta));

  if (golden) golden_.push_back(record);
  return record;
}

}  // namespace earl::obs
