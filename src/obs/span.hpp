// Causal span tracing for fault-injection campaigns (the "where does the
// wall time go" layer the ROADMAP's checkpoint/restore work needs: the
// golden-replay share of every experiment is exactly the work that
// checkpointing would skip).
//
// A SpanTracer owns a set of named tracks, one per logical timeline (one
// per campaign worker, plus "campaign", "http", "control").  Each track is
// a fixed-capacity lock-free ring of completed spans: emitting is a
// fetch_add slot claim plus a handful of relaxed atomic stores with a
// seqlock-style publication, so the hot path never takes a lock and a slow
// reader can never stall a worker — it just loses the oldest spans
// (counted).  Snapshot readers validate each slot's sequence number before
// and after the copy and discard entries overwritten mid-read, which keeps
// concurrent snapshots (the /spans endpoint scrapes a live campaign)
// TSan-clean without a writer-side mutex.
//
// Passivity contract, same as every observer in obs/: tracing must never
// change campaign results.  The runner emits spans only when a tracer is
// attached AND the experiment is sampled; a null SpanTrack* disables every
// helper here, so the disabled hot path is a pointer test.
//
// Clocks are injectable (SpanTracer::Options::now_ns) so tests assert
// byte-exact traces; the default is std::chrono::steady_clock.
//
// Export: render_chrome_trace() writes the Chrome trace_event JSON format
// ({"traceEvents":[{"ph":"X","ts":...,"dur":...},...]}), loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing and aggregated offline by
// `earl-trace --phase-report` (analysis/span_report.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace earl::obs {

/// The instrumented phases.  Experiment-lifecycle phases (claim through
/// store) tile a worker's timeline; inject and target_reset nest inside
/// them; campaign-level and service phases get their own tracks.
enum class SpanPhase : std::uint8_t {
  kCampaign,       // the whole CampaignRunner::run() call
  kSampleFaults,   // deterministic fault-list sampling
  kGoldenRun,      // the shared reference execution
  kClaim,          // queue mutex + pending extensions + fault hand-off
  kSetup,          // target reset + arm ("download the workload")
  kGoldenReplay,   // executing the fault-free prefix up to the injection
  kInject,         // scan-chain/state write at the injection point
  kPostInjectRun,  // execution from injection to detection or run end
  kClassify,       // state compare + deviation stats + outcome
  kProbe,          // propagation prober re-execution (value failures)
  kStore,          // observer callbacks + result store
  kTargetReset,    // target-internal machine reset (nests inside setup)
  kHttpRequest,    // one telemetry request-response exchange
  kControl,        // one accepted control command
  kCheckpointRestore,  // golden-state restore + arm (replaces setup)
  kResidualReplay,     // checkpoint -> injection prefix (replaces replay)
};
inline constexpr std::size_t kSpanPhaseCount = 16;

/// Stable lowercase name ("golden_replay", ...), the `name` field of the
/// exported trace events and the aggregation key of the phase report.
const char* span_phase_name(SpanPhase phase);

/// Sentinel for "no argument": the exporter omits the args field.  Equal
/// to obs::kGoldenExperimentId on purpose — golden-run spans carry no
/// experiment id.
inline constexpr std::uint64_t kSpanNoArg = ~std::uint64_t{0};

/// One completed span as read back out of a ring.
struct SpanRecord {
  SpanPhase phase = SpanPhase::kCampaign;
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  std::uint64_t arg = kSpanNoArg;  // experiment id / command / phase-specific
};

class SpanTracer;

/// One timeline's ring buffer.  emit() is safe from any number of threads
/// (slots are claimed with fetch_add), though most tracks have a single
/// writer; set_scope() is single-writer only — it tags subsequent emits
/// with the current experiment id so nested spans (target reset, inject)
/// inherit it without threading the id through every call.
class SpanTrack {
 public:
  const std::string& name() const { return name_; }

  /// The tracer's clock (injectable; see SpanTracer::Options::now_ns).
  std::int64_t now() const;

  /// Tags subsequent scope-arg emits with `arg` (an experiment id, or
  /// kSpanNoArg).  Owner thread only.
  void set_scope(std::uint64_t arg) { scope_ = arg; }
  std::uint64_t scope() const { return scope_; }

  /// Records a completed [begin_ns, end_ns) span.  Lock-free: one relaxed
  /// fetch_add plus relaxed stores and one release publication.  When the
  /// ring is full the oldest span is overwritten (counted in dropped()).
  void emit(SpanPhase phase, std::int64_t begin_ns, std::int64_t end_ns) {
    emit(phase, begin_ns, end_ns, scope_);
  }
  void emit(SpanPhase phase, std::int64_t begin_ns, std::int64_t end_ns,
            std::uint64_t arg);

  /// Spans emitted over the track's lifetime (monotonic).
  std::uint64_t emitted() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Spans overwritten before any snapshot could retain them.
  std::uint64_t dropped() const {
    const std::uint64_t n = emitted();
    return n > capacity_ ? n - capacity_ : 0;
  }
  std::size_t capacity() const { return capacity_; }

  /// Copies the retained window, oldest first.  Entries being overwritten
  /// concurrently are validated out (seqlock re-check), so records are
  /// never torn.  Safe from any thread at any time.
  std::vector<SpanRecord> snapshot() const;

 private:
  friend class SpanTracer;
  SpanTrack(const SpanTracer* tracer, std::string name, std::size_t capacity);

  /// One ring slot.  `seq` holds index+1 once the record at that ring
  /// index is published, 0 while a writer is between invalidation and
  /// publication; every field is an atomic so concurrent snapshot copies
  /// are race-free and a failed seq re-check discards the torn copy.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint8_t> phase{0};
    std::atomic<std::int64_t> begin_ns{0};
    std::atomic<std::int64_t> end_ns{0};
    std::atomic<std::uint64_t> arg{0};
  };

  const SpanTracer* tracer_;
  std::string name_;
  std::size_t capacity_;  // power of two
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::uint64_t scope_ = kSpanNoArg;  // owner-thread span tag
};

/// RAII span: stamps begin at construction, emits at destruction.  A null
/// track disables it entirely (two pointer tests, no clock reads).
class ScopedSpan {
 public:
  /// Scope-arg span: the record carries the track's current scope.
  ScopedSpan(SpanTrack* track, SpanPhase phase)
      : ScopedSpan(track, phase, track != nullptr ? track->scope()
                                                  : kSpanNoArg) {}
  /// Explicit-arg span (control command, etc).
  ScopedSpan(SpanTrack* track, SpanPhase phase, std::uint64_t arg)
      : track_(track),
        phase_(phase),
        arg_(arg),
        begin_ns_(track != nullptr ? track->now() : 0) {}
  ~ScopedSpan() {
    if (track_ != nullptr) track_->emit(phase_, begin_ns_, track_->now(), arg_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanTrack* track_;
  SpanPhase phase_;
  std::uint64_t arg_;
  std::int64_t begin_ns_;
};

class SpanTracer {
 public:
  struct Options {
    /// Spans retained per track (rounded up to a power of two).  The
    /// default holds ~2700 fully-traced experiments per worker.
    std::size_t track_capacity = std::size_t{1} << 14;
    /// Trace every Nth experiment (1 = all).  Campaign-level and service
    /// spans are always recorded.
    std::uint64_t sample_every = 1;
    /// Monotonic clock in nanoseconds; null = std::chrono::steady_clock.
    std::function<std::int64_t()> now_ns;
  };

  SpanTracer() : SpanTracer(Options{}) {}
  explicit SpanTracer(Options options);

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Finds or creates the named track.  The returned pointer stays valid
  /// for the tracer's lifetime.  Registration takes a mutex; emitting on
  /// the returned track never does.
  SpanTrack* track(std::string_view name);

  std::int64_t now() const;
  std::uint64_t sample_every() const { return options_.sample_every; }
  /// Whether the experiment id falls in the traced sample.
  bool sampled(std::uint64_t experiment) const {
    return options_.sample_every <= 1 ||
           experiment % options_.sample_every == 0;
  }

  struct TrackSnapshot {
    std::string name;
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;
    std::vector<SpanRecord> spans;
  };
  /// All tracks in registration order, each with its retained window.
  std::vector<TrackSnapshot> snapshot() const;

  std::uint64_t total_emitted() const;
  std::uint64_t total_dropped() const;

 private:
  Options options_;
  mutable std::mutex mutex_;  // guards tracks_ registration only
  std::vector<std::unique_ptr<SpanTrack>> tracks_;
};

/// Renders track snapshots as Chrome trace_event JSON: one "M" thread_name
/// metadata event per track, one "X" complete event per span (ts/dur in
/// microseconds, rebased so the earliest span starts at 0), deterministic
/// ordering.  `sample_every` and drop totals ride along in "otherData".
std::string render_chrome_trace(
    const std::vector<SpanTracer::TrackSnapshot>& tracks,
    std::uint64_t sample_every);
/// Convenience overload: snapshots the tracer and renders it.
std::string render_chrome_trace(const SpanTracer& tracer);

}  // namespace earl::obs
