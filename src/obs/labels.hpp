// Stable machine-readable labels for telemetry.
//
// Human-facing names ("Severe (Semi-Permanent)", "Master/Slave Comparator")
// are unsuitable as JSON field values or metric-name components, so every
// enum the observability layer exports gets a lower_snake_case slug that is
// stable across releases: consumers key dashboards and scripts on these.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "analysis/classify.hpp"
#include "fi/fault_model.hpp"
#include "tvm/edm.hpp"

namespace earl::obs {

/// Lower-cases `name` and folds every non-alphanumeric run into a single
/// '_' (leading/trailing runs are dropped): "Severe (Semi-Permanent)" ->
/// "severe_semi_permanent".
std::string slugify(std::string_view name);

/// Slug of an error-detection mechanism, e.g. "control_flow_error".
std::string edm_slug(tvm::Edm edm);

/// Slug of a classification outcome, e.g. "minor_transient".
std::string outcome_slug(analysis::Outcome outcome);

/// Slug of a fault model, e.g. "single_bit_flip".
std::string fault_kind_slug(fi::FaultKind kind);

/// Reverse lookups for trace/event consumers (offline analysis re-reads the
/// slugs the emitters wrote).  nullopt for an unknown slug.
std::optional<analysis::Outcome> parse_outcome_slug(std::string_view slug);
std::optional<tvm::Edm> parse_edm_slug(std::string_view slug);
std::optional<fi::FaultKind> parse_fault_kind_slug(std::string_view slug);

}  // namespace earl::obs
