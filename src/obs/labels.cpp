#include "obs/labels.hpp"

#include <cctype>

namespace earl::obs {

std::string slugify(std::string_view name) {
  std::string slug;
  slug.reserve(name.size());
  bool pending_separator = false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_separator && !slug.empty()) slug.push_back('_');
      pending_separator = false;
      slug.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      pending_separator = true;
    }
  }
  return slug;
}

std::string edm_slug(tvm::Edm edm) { return slugify(tvm::edm_name(edm)); }

std::string outcome_slug(analysis::Outcome outcome) {
  return slugify(analysis::outcome_name(outcome));
}

std::string fault_kind_slug(fi::FaultKind kind) {
  switch (kind) {
    case fi::FaultKind::kSingleBitFlip: return "single_bit_flip";
    case fi::FaultKind::kMultiBitFlip: return "multi_bit_flip";
    case fi::FaultKind::kStuckAt0: return "stuck_at_0";
    case fi::FaultKind::kStuckAt1: return "stuck_at_1";
  }
  return "unknown";
}

std::optional<analysis::Outcome> parse_outcome_slug(std::string_view slug) {
  for (std::size_t o = 0; o < analysis::kOutcomeCount; ++o) {
    const auto outcome = static_cast<analysis::Outcome>(o);
    if (outcome_slug(outcome) == slug) return outcome;
  }
  return std::nullopt;
}

std::optional<tvm::Edm> parse_edm_slug(std::string_view slug) {
  for (std::size_t e = 0; e < tvm::kEdmCount; ++e) {
    const auto edm = static_cast<tvm::Edm>(e);
    if (edm_slug(edm) == slug) return edm;
  }
  return std::nullopt;
}

std::optional<fi::FaultKind> parse_fault_kind_slug(std::string_view slug) {
  for (const fi::FaultKind kind :
       {fi::FaultKind::kSingleBitFlip, fi::FaultKind::kMultiBitFlip,
        fi::FaultKind::kStuckAt0, fi::FaultKind::kStuckAt1}) {
    if (fault_kind_slug(kind) == slug) return kind;
  }
  return std::nullopt;
}

}  // namespace earl::obs
