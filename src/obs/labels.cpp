#include "obs/labels.hpp"

#include <cctype>

namespace earl::obs {

std::string slugify(std::string_view name) {
  std::string slug;
  slug.reserve(name.size());
  bool pending_separator = false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_separator && !slug.empty()) slug.push_back('_');
      pending_separator = false;
      slug.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      pending_separator = true;
    }
  }
  return slug;
}

std::string edm_slug(tvm::Edm edm) { return slugify(tvm::edm_name(edm)); }

std::string outcome_slug(analysis::Outcome outcome) {
  return slugify(analysis::outcome_name(outcome));
}

}  // namespace earl::obs
