#include "obs/criticality_observer.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace earl::obs {

CriticalityObserver::CriticalityObserver(Options options,
                                         MetricsRegistry* registry)
    : options_(std::move(options)),
      registry_(registry),
      index_(options_.criticality, options_.resolver) {
  if (registry_ != nullptr) {
    registry_->set_help(
        "earl.experiments_by_class",
        "Weighted experiments per criticality class and state element.");
    registry_->set_help(
        "earl.criticality_score",
        "Scalar fault-criticality score per state element (0 = harmless, "
        "1 = every fault a permanent severe failure).");
  }
}

void CriticalityObserver::on_campaign_start(const fi::CampaignConfig& config,
                                            const CampaignStartInfo& info) {
  (void)info;
  const std::lock_guard<std::mutex> lock(mutex_);
  index_ = analysis::CriticalityIndex(options_.criticality,
                                      options_.resolver);
  index_.set_campaign(config.name);
  // Registry members are cumulative across campaigns; only the handle
  // cache resets (handles re-resolve on first touch).
  series_.clear();
}

void CriticalityObserver::on_golden_done(const fi::GoldenRun& golden) {
  const std::lock_guard<std::mutex> lock(mutex_);
  index_.set_time_space(golden.total_time);
}

void CriticalityObserver::on_experiment_done(std::size_t worker,
                                             const fi::ExperimentResult& result,
                                             std::uint64_t wall_ns) {
  (void)worker;
  (void)wall_ns;
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<const analysis::ElementProfile*> touched =
      index_.add(result);
  if (registry_ == nullptr) return;
  const std::uint64_t weight = result.weight == 0 ? 1 : result.weight;
  const std::size_t cls = static_cast<std::size_t>(
      analysis::criticality_class(result.outcome));
  for (const analysis::ElementProfile* element : touched) {
    ElementSeries& series = series_[element->name];
    if (series.score == nullptr) {
      for (std::size_t c = 0; c < analysis::kCriticalityClassCount; ++c) {
        series.classes[c] = &registry_->labeled_counter(
            "earl.experiments_by_class",
            {{"class",
              std::string(analysis::criticality_class_slug(
                  static_cast<analysis::CriticalityClass>(c)))},
             {"element", element->name}});
      }
      series.score = &registry_->labeled_gauge(
          "earl.criticality_score", {{"element", element->name}});
    }
    series.classes[cls]->add(weight);
    series.score->set(element->score());
  }
}

std::string CriticalityObserver::report_json(std::size_t top_k) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.to_json(top_k);
}

std::string CriticalityObserver::element_json(
    std::string_view element) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.element_json(element);
}

std::string CriticalityObserver::digest_json(std::size_t top_k) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<const analysis::ElementProfile*> order = index_.ranked();
  const std::size_t n = std::min(top_k, order.size());
  std::string top = "[";
  for (std::size_t i = 0; i < n; ++i) {
    JsonObject entry;
    entry.field("element", order[i]->name);
    entry.field("score", order[i]->score());
    if (i > 0) top += ",";
    top += std::move(entry).str();
  }
  top += "]";
  JsonObject doc;
  doc.field("experiments", index_.total_weight());
  doc.field("elements", static_cast<std::uint64_t>(order.size()));
  doc.raw_field("top", top);
  return std::move(doc).str();
}

std::uint64_t CriticalityObserver::experiments_seen() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.total_weight();
}

analysis::CriticalityIndex CriticalityObserver::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_;
}

}  // namespace earl::obs
