#include "obs/bench_report.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace earl::obs {

std::string_view bench_metric_kind_slug(BenchMetricKind kind) {
  switch (kind) {
    case BenchMetricKind::kTiming: return "timing";
    case BenchMetricKind::kThroughput: return "throughput";
    case BenchMetricKind::kCounter: return "counter";
    case BenchMetricKind::kInfo: return "info";
  }
  return "info";
}

std::optional<BenchMetricKind> parse_bench_metric_kind(
    std::string_view slug) {
  if (slug == "timing") return BenchMetricKind::kTiming;
  if (slug == "throughput") return BenchMetricKind::kThroughput;
  if (slug == "counter") return BenchMetricKind::kCounter;
  if (slug == "info") return BenchMetricKind::kInfo;
  return std::nullopt;
}

void BenchReport::set_metric(std::string name, BenchMetricKind kind,
                             std::string unit, double value,
                             double budget_pct) {
  // Kept sorted by name so the in-memory report, its serialization and a
  // parsed document are all the same order (round-trip is operator==).
  const auto at = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const BenchMetric& metric, const std::string& key) {
        return metric.name < key;
      });
  if (at != metrics.end() && at->name == name) {
    *at = {std::move(name), kind, std::move(unit), value, budget_pct};
    return;
  }
  metrics.insert(at,
                 {std::move(name), kind, std::move(unit), value, budget_pct});
}

void BenchReport::set_percentiles(std::string_view prefix,
                                  std::span<const double> xs,
                                  std::string_view unit, double budget_pct) {
  const util::Percentiles p = util::percentiles(xs);
  const std::string base(prefix);
  const std::string suffix = "_" + std::string(unit);
  set_metric(base + ".p50" + suffix, BenchMetricKind::kTiming,
             std::string(unit), p.p50, budget_pct);
  set_metric(base + ".p95" + suffix, BenchMetricKind::kTiming,
             std::string(unit), p.p95, budget_pct);
  set_metric(base + ".p99" + suffix, BenchMetricKind::kTiming,
             std::string(unit), p.p99, budget_pct);
  set_metric(base + ".samples", BenchMetricKind::kInfo, "count",
             static_cast<double>(p.n));
}

void BenchReport::add_registry_counters(const MetricsRegistry& registry,
                                        std::string_view prefix) {
  for (const auto& [name, value] : registry.counters_snapshot()) {
    if (name.rfind(prefix, 0) != 0) continue;
    set_metric(name, BenchMetricKind::kCounter, "count",
               static_cast<double>(value));
  }
}

const BenchMetric* BenchReport::find_metric(std::string_view name) const {
  for (const BenchMetric& metric : metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

std::string BenchReport::to_json() const {
  std::vector<const BenchMetric*> sorted;
  sorted.reserve(metrics.size());
  for (const BenchMetric& metric : metrics) sorted.push_back(&metric);
  std::sort(sorted.begin(), sorted.end(),
            [](const BenchMetric* a, const BenchMetric* b) {
              return a->name < b->name;
            });

  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(kSchema) + "\",\n";
  out += "  \"bench\": \"" + json_escape(bench) + "\",\n";
  out += "  \"campaign_scale\": " + json_number(campaign_scale) + ",\n";
  out += "  \"build\": {\n";
  out += "    \"git\": \"" + json_escape(build.git) + "\",\n";
  out += "    \"compiler\": \"" + json_escape(build.compiler) + "\",\n";
  out += "    \"build_type\": \"" + json_escape(build.build_type) + "\",\n";
  out += "    \"flags\": \"" + json_escape(build.flags) + "\"\n";
  out += "  },\n";
  out += "  \"metrics\": [";
  bool first = true;
  for (const BenchMetric* metric : sorted) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + json_escape(metric->name) + "\", \"kind\": \"" +
           std::string(bench_metric_kind_slug(metric->kind)) +
           "\", \"unit\": \"" + json_escape(metric->unit) +
           "\", \"value\": " + json_number(metric->value);
    if (metric->budget_pct > 0.0) {
      out += ", \"budget_pct\": " + json_number(metric->budget_pct);
    }
    out += "}";
  }
  out += first ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

namespace {

bool report_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Fetches a required member of the expected kind; false + message
/// otherwise.
bool require(const JsonValue& object, std::string_view key,
             JsonValue::Kind kind, const JsonValue** out,
             std::string* error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) {
    return report_error(error, "missing field \"" + std::string(key) + "\"");
  }
  if (value->kind != kind) {
    return report_error(error,
                        "field \"" + std::string(key) + "\" has wrong type");
  }
  *out = value;
  return true;
}

}  // namespace

std::optional<BenchReport> BenchReport::from_json(std::string_view text,
                                                  std::string* error) {
  std::string parse_error;
  const std::optional<JsonValue> root = json_parse(text, &parse_error);
  if (!root) {
    report_error(error, "invalid JSON: " + parse_error);
    return std::nullopt;
  }
  if (!root->is_object()) {
    report_error(error, "document is not a JSON object");
    return std::nullopt;
  }

  const JsonValue* schema = nullptr;
  const JsonValue* bench = nullptr;
  const JsonValue* scale = nullptr;
  const JsonValue* build = nullptr;
  const JsonValue* metrics = nullptr;
  if (!require(*root, "schema", JsonValue::Kind::kString, &schema, error) ||
      !require(*root, "bench", JsonValue::Kind::kString, &bench, error) ||
      !require(*root, "campaign_scale", JsonValue::Kind::kNumber, &scale,
               error) ||
      !require(*root, "build", JsonValue::Kind::kObject, &build, error) ||
      !require(*root, "metrics", JsonValue::Kind::kArray, &metrics, error)) {
    return std::nullopt;
  }
  if (schema->string != kSchema) {
    report_error(error, "unsupported schema \"" + schema->string +
                            "\" (expected \"" + std::string(kSchema) + "\")");
    return std::nullopt;
  }

  BenchReport report;
  report.bench = bench->string;
  report.campaign_scale = scale->number;

  for (const char* key : {"git", "compiler", "build_type", "flags"}) {
    const JsonValue* field = nullptr;
    if (!require(*build, key, JsonValue::Kind::kString, &field, error)) {
      return std::nullopt;
    }
    if (std::string_view(key) == "git") report.build.git = field->string;
    else if (std::string_view(key) == "compiler")
      report.build.compiler = field->string;
    else if (std::string_view(key) == "build_type")
      report.build.build_type = field->string;
    else report.build.flags = field->string;
  }

  for (const JsonValue& entry : metrics->array) {
    if (!entry.is_object()) {
      report_error(error, "metrics entries must be objects");
      return std::nullopt;
    }
    const JsonValue* name = nullptr;
    const JsonValue* kind = nullptr;
    const JsonValue* unit = nullptr;
    const JsonValue* value = nullptr;
    if (!require(entry, "name", JsonValue::Kind::kString, &name, error) ||
        !require(entry, "kind", JsonValue::Kind::kString, &kind, error) ||
        !require(entry, "unit", JsonValue::Kind::kString, &unit, error) ||
        !require(entry, "value", JsonValue::Kind::kNumber, &value, error)) {
      return std::nullopt;
    }
    const std::optional<BenchMetricKind> parsed_kind =
        parse_bench_metric_kind(kind->string);
    if (!parsed_kind) {
      report_error(error, "unknown metric kind \"" + kind->string + "\"");
      return std::nullopt;
    }
    BenchMetric metric;
    metric.name = name->string;
    metric.kind = *parsed_kind;
    metric.unit = unit->string;
    metric.value = value->number;
    if (const JsonValue* budget = entry.find("budget_pct");
        budget != nullptr) {
      if (!budget->is_number() || budget->number <= 0.0) {
        report_error(error, "budget_pct must be a positive number");
        return std::nullopt;
      }
      metric.budget_pct = budget->number;
    }
    if (report.find_metric(metric.name) != nullptr) {
      report_error(error, "duplicate metric \"" + metric.name + "\"");
      return std::nullopt;
    }
    report.metrics.push_back(std::move(metric));
  }
  return report;
}

bool BenchReport::write_file(const std::string& path,
                             std::string* error) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.good()) {
    return report_error(error, "cannot open '" + path + "' for writing");
  }
  out << to_json();
  out.flush();
  if (!out.good()) return report_error(error, "failed to write '" + path + "'");
  return true;
}

std::optional<BenchReport> BenchReport::load_file(const std::string& path,
                                                  std::string* error) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.good()) {
    report_error(error, "cannot read '" + path + "'");
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string validation_error;
  std::optional<BenchReport> report =
      from_json(buffer.str(), &validation_error);
  if (!report) report_error(error, path + ": " + validation_error);
  return report;
}

std::string bench_report_filename(std::string_view bench) {
  return "BENCH_" + std::string(bench) + ".json";
}

}  // namespace earl::obs
