#include "obs/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "obs/json.hpp"

namespace earl::obs {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string HttpRequest::path() const {
  const std::size_t query = target.find('?');
  return query == std::string::npos ? target : target.substr(0, query);
}

std::string HttpRequest::query() const {
  const std::size_t query = target.find('?');
  return query == std::string::npos ? std::string()
                                    : target.substr(query + 1);
}

std::string HttpRequest::query_param(std::string_view name) const {
  const std::string qs = query();
  std::string_view rest = qs;
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    const std::string_view key =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (key != name) continue;
    const std::string_view raw =
        eq == std::string_view::npos ? std::string_view() : pair.substr(eq + 1);
    std::string value;
    value.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '+') {
        value.push_back(' ');
      } else if (raw[i] == '%' && i + 2 < raw.size() &&
                 std::isxdigit(static_cast<unsigned char>(raw[i + 1])) &&
                 std::isxdigit(static_cast<unsigned char>(raw[i + 2]))) {
        const std::string hex(raw.substr(i + 1, 2));
        value.push_back(
            static_cast<char>(std::stoi(hex, nullptr, 16)));
        i += 2;
      } else {
        value.push_back(raw[i]);
      }
    }
    return value;
  }
  return "";
}

std::string HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return value;
  }
  return "";
}

bool HttpRequest::keep_alive() const {
  const std::string connection = header("Connection");
  if (version_minor >= 1) return !iequals(connection, "close");
  return iequals(connection, "keep-alive");
}

HttpParse parse_http_request(std::string_view buffer, HttpRequest* out,
                             std::size_t* consumed, std::size_t max_bytes) {
  const std::size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    // No terminator yet: either the client is mid-send or it is flooding.
    return buffer.size() > max_bytes ? HttpParse::kTooLarge
                                     : HttpParse::kIncomplete;
  }
  if (head_end + 4 > max_bytes) return HttpParse::kTooLarge;

  const std::string_view head = buffer.substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // request-line = method SP request-target SP HTTP-version
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return HttpParse::kMalformed;
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (method.empty() || target.empty()) return HttpParse::kMalformed;
  if (target[0] != '/' && target != "*") return HttpParse::kMalformed;
  if (version.size() != 8 || !version.starts_with("HTTP/1.") ||
      version[7] < '0' || version[7] > '9') {
    return HttpParse::kMalformed;
  }

  HttpRequest request;
  request.method = std::string(method);
  request.target = std::string(target);
  request.version_minor = version[7] - '0';

  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return HttpParse::kMalformed;
    }
    const std::string_view name = line.substr(0, colon);
    if (name.find(' ') != std::string_view::npos ||
        name.find('\t') != std::string_view::npos) {
      return HttpParse::kMalformed;
    }
    request.headers.emplace_back(std::string(name),
                                 std::string(trim(line.substr(colon + 1))));
  }

  // Bodies are tolerated (and skipped) so a pipelined follow-up request
  // still parses from the right offset.
  std::size_t body_len = 0;
  const std::string length = request.header("Content-Length");
  if (!length.empty()) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(length.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return HttpParse::kMalformed;
    body_len = static_cast<std::size_t>(parsed);
  }
  const std::size_t total = head_end + 4 + body_len;
  if (total > max_bytes) return HttpParse::kTooLarge;
  if (buffer.size() < total) return HttpParse::kIncomplete;
  request.body = std::string(buffer.substr(head_end + 4, body_len));

  *out = std::move(request);
  *consumed = total;
  return HttpParse::kOk;
}

std::string_view http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpResponse json_error_response(int status, std::string_view error,
                                 std::string_view detail) {
  JsonObject envelope;
  envelope.field("error", error);
  envelope.field("detail", detail);
  envelope.field("status", static_cast<std::uint64_t>(status));
  return {status, "application/json", std::move(envelope).str() + "\n", {}};
}

bool constant_time_equal(std::string_view a, std::string_view b) {
  // Size mismatch folds into the accumulator instead of early-returning;
  // the scan length depends only on the attacker-controlled input `a`.
  unsigned char diff = a.size() == b.size() ? 0 : 1;
  const std::size_t modulus = std::max<std::size_t>(1, b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const unsigned char expected =
        b.empty() ? 0 : static_cast<unsigned char>(b[i % modulus]);
    diff |= static_cast<unsigned char>(a[i]) ^ expected;
  }
  return diff == 0;
}

std::string render_http_response(const HttpResponse& response,
                                 bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    std::string(http_status_reason(response.status)) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

bool HttpConnection::write_all(std::string_view data) {
  if (!alive_) return false;
  while (!data.empty()) {
    const ssize_t sent =
        ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      alive_ = false;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

bool HttpConnection::send_response(const HttpResponse& response,
                                   bool keep_alive) {
  return write_all(render_http_response(response, keep_alive));
}

bool HttpConnection::begin_stream(
    std::string_view content_type,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  streaming_ = true;
  std::string head = "HTTP/1.1 200 OK\r\n";
  head += "Content-Type: " + std::string(content_type) + "\r\n";
  head += "Cache-Control: no-cache\r\n";
  for (const auto& [name, value] : extra_headers) {
    head += name + ": " + value + "\r\n";
  }
  head += "Connection: close\r\n";
  head += "\r\n";
  return write_all(head);
}

HttpServer::HttpServer(Handler handler, Options options)
    : handler_(std::move(handler)), options_(std::move(options)) {}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.address.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "invalid IPv4 listen address '" + options_.address + "'";
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(options_.handler_threads);
  for (std::size_t i = 0; i < options_.handler_threads; ++i) {
    workers_.emplace_back([this] { handler_loop(); });
  }
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started (or already stopped): nothing to join.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  queue_cv_.notify_all();
  {
    // Unblock handler threads stuck in recv()/send() on live connections.
    const std::lock_guard<std::mutex> lock(active_mutex_);
    for (const int fd : active_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::string HttpServer::url() const {
  return "http://" + options_.address + ":" + std::to_string(port_);
}

void HttpServer::accept_loop() {
  while (running()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (!running()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    bool overloaded = false;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_.size() >= options_.max_pending) {
        overloaded = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (overloaded) {
      // Shed load at the door instead of stalling the acceptor.
      HttpConnection connection(fd);
      connection.send_response(
          json_error_response(503, "overloaded", "telemetry server overloaded"),
          false);
      ::close(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void HttpServer::handler_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return !running() || !pending_.empty(); });
      if (!running() && pending_.empty()) return;
      if (pending_.empty()) continue;
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
  }
}

void HttpServer::track(int fd) {
  const std::lock_guard<std::mutex> lock(active_mutex_);
  active_.insert(fd);
}

void HttpServer::untrack(int fd) {
  const std::lock_guard<std::mutex> lock(active_mutex_);
  active_.erase(fd);
}

void HttpServer::serve_connection(int fd) {
  track(fd);
  HttpConnection connection(fd);
  std::string buffer;
  int idle_ms = 0;
  bool open = true;
  while (open && running()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (!running()) break;
    if (ready < 0) break;
    if (ready == 0) {
      idle_ms += 100;
      if (idle_ms >= options_.idle_timeout_ms) break;
      continue;
    }
    idle_ms = 0;
    char chunk[4096];
    const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
    if (got <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(got));

    for (;;) {  // the buffer may hold several pipelined requests
      HttpRequest request;
      std::size_t consumed = 0;
      const HttpParse status = parse_http_request(
          buffer, &request, &consumed, options_.max_request_bytes);
      if (status == HttpParse::kIncomplete) break;
      if (status == HttpParse::kTooLarge) {
        connection.send_response(
            json_error_response(431, "request_too_large", "request too large"),
            false);
        open = false;
        break;
      }
      if (status == HttpParse::kMalformed) {
        connection.send_response(
            json_error_response(400, "bad_request", "malformed request"),
            false);
        open = false;
        break;
      }
      buffer.erase(0, consumed);
      handler_(request, connection);
      if (connection.streaming() || !connection.alive() ||
          !request.keep_alive()) {
        open = false;
        break;
      }
    }
  }
  untrack(fd);
  ::close(fd);
}

std::string HttpGetResult::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return value;
  }
  return "";
}

std::optional<HttpGetResult> http_request(const HttpClientRequest& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(request.port);
  const std::string host =
      request.host == "localhost" ? "127.0.0.1" : request.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return std::nullopt;
  }

  std::string wire = request.method + " " + request.target +
                     " HTTP/1.1\r\nHost: " + host + "\r\n";
  for (const auto& [name, value] : request.headers) {
    wire += name + ": " + value + "\r\n";
  }
  if (!request.body.empty() || request.method != "GET") {
    wire += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  }
  wire += "Connection: close\r\n\r\n";
  wire += request.body;
  std::string_view remaining = wire;
  while (!remaining.empty()) {
    const ssize_t n =
        ::send(fd, remaining.data(), remaining.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    remaining.remove_prefix(static_cast<std::size_t>(n));
  }

  // Connection: close lets read-to-EOF frame the response — no
  // Content-Length or chunked parsing needed.
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.x NNN ..." status line, headers, blank line, body.
  if (raw.rfind("HTTP/1.", 0) != 0) return std::nullopt;
  const std::size_t space = raw.find(' ');
  if (space == std::string::npos || space + 4 > raw.size()) {
    return std::nullopt;
  }
  HttpGetResult result;
  result.status = 0;
  for (std::size_t i = space + 1; i < space + 4; ++i) {
    if (raw[i] < '0' || raw[i] > '9') return std::nullopt;
    result.status = result.status * 10 + (raw[i] - '0');
  }
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return std::nullopt;
  const std::size_t line_end = raw.find("\r\n");
  std::size_t pos = line_end + 2;
  while (pos < head_end) {
    std::size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos || eol > head_end) eol = head_end;
    const std::string_view line =
        std::string_view(raw).substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) continue;
    result.headers.emplace_back(std::string(line.substr(0, colon)),
                                std::string(trim(line.substr(colon + 1))));
  }
  result.body = raw.substr(head_end + 4);
  return result;
}

std::optional<HttpGetResult> http_get(std::uint16_t port,
                                      std::string_view target) {
  HttpClientRequest request;
  request.port = port;
  request.target = std::string(target);
  return http_request(request);
}

}  // namespace earl::obs
