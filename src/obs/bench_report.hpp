// Machine-readable bench telemetry (the `BENCH_*.json` contract).
//
// Every bench binary accepts `--json FILE` and, alongside its unchanged
// human-oriented stdout (CSV series, ASCII tables), emits one versioned
// JSON document describing what it measured: monotonic wall timings,
// throughput (experiments/sec), latency percentiles from util/stats, and
// the campaign counters pulled from the MetricsRegistry the bench's
// observer filled.  `earl-bench-diff` compares these documents against
// checked-in baselines with per-metric budgets — the machinery that keeps
// "≥10x campaign throughput" claims honest across PRs.
//
// Schema `earl.bench.v1`:
//
//   {
//     "schema": "earl.bench.v1",
//     "bench": "campaign_scaling",
//     "campaign_scale": 1.0,
//     "build": {"git": "...", "compiler": "...", "build_type": "...",
//               "flags": "..."},
//     "metrics": [
//       {"name": "...", "kind": "timing|throughput|counter|info",
//        "unit": "s|ns|eps|count|...", "value": 1.25,
//        "budget_pct": 25.0}        // optional, overrides the diff default
//     ]
//   }
//
// Metrics are sorted by name; serialization is deterministic, so two
// identical runs produce byte-identical documents except for the measured
// values.  Budget semantics live with the *kind*: timing/throughput
// metrics are compared within a relative budget, counter metrics must be
// exactly equal when the campaign scale matches (campaigns are seed-
// deterministic), info metrics only need to exist.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/build_info.hpp"

namespace earl::obs {

class MetricsRegistry;

enum class BenchMetricKind { kTiming, kThroughput, kCounter, kInfo };

std::string_view bench_metric_kind_slug(BenchMetricKind kind);
std::optional<BenchMetricKind> parse_bench_metric_kind(std::string_view slug);

struct BenchMetric {
  std::string name;  // dot-path, e.g. "campaign.throughput_eps.workers_1"
  BenchMetricKind kind = BenchMetricKind::kInfo;
  std::string unit;  // "s", "ns", "eps", "count", ...
  double value = 0.0;
  /// Per-metric relative budget in percent; <= 0 means "use the diff
  /// tool's default".  Serialized only when positive.
  double budget_pct = 0.0;

  bool operator==(const BenchMetric&) const = default;
};

struct BenchReport {
  static constexpr std::string_view kSchema = "earl.bench.v1";

  std::string bench;  // slug, e.g. "campaign_scaling"
  BuildInfo build;
  double campaign_scale = 1.0;
  std::vector<BenchMetric> metrics;

  bool operator==(const BenchReport&) const = default;

  /// Adds (or overwrites — last set wins) one metric.
  void set_metric(std::string name, BenchMetricKind kind, std::string unit,
                  double value, double budget_pct = 0.0);

  /// Records p50/p95/p99 of a latency sample as three timing metrics
  /// `<prefix>.p50_<unit>` / `.p95_<unit>` / `.p99_<unit>` plus
  /// `<prefix>.samples` (counter kind is deliberately NOT used: sample
  /// counts vary with wall time, so they are informational).
  void set_percentiles(std::string_view prefix, std::span<const double> xs,
                       std::string_view unit, double budget_pct = 0.0);

  /// Snapshots every counter whose dot-path starts with `prefix` out of a
  /// registry as exact-match counter metrics ("campaign." pulls the
  /// deterministic outcome/EDM tallies, not wall-clock noise).
  void add_registry_counters(const MetricsRegistry& registry,
                             std::string_view prefix);

  const BenchMetric* find_metric(std::string_view name) const;

  /// Deterministic serialization: metrics sorted by name, 2-space indent,
  /// trailing newline.
  std::string to_json() const;

  /// Strict parse + schema validation.  nullopt + message on malformed
  /// JSON, wrong schema version, missing fields or unknown metric kinds.
  static std::optional<BenchReport> from_json(std::string_view text,
                                              std::string* error = nullptr);

  /// Whole-file convenience wrappers; false/nullopt + message on I/O or
  /// validation failure.
  bool write_file(const std::string& path, std::string* error = nullptr) const;
  static std::optional<BenchReport> load_file(const std::string& path,
                                              std::string* error = nullptr);
};

/// `BENCH_<bench>.json` — the canonical artifact/baseline filename.
std::string bench_report_filename(std::string_view bench);

}  // namespace earl::obs
