// Structured JSONL campaign event log.
//
// The machine-readable counterpart of GOOFI's normal-mode logging: one JSON
// object per line, one line per lifecycle event, so a campaign's full run
// record can be replayed through jq/pandas without bespoke parsing.
//
// Event stream (see docs/OBSERVABILITY.md for the field-level schema):
//   campaign_start  — config + resolved fault space and worker count
//   golden_run      — reference-execution facts (time space, watchdog base)
//   iteration       — detail mode only: one per output-producing iteration
//                     (golden run included, flagged "golden":true)
//   experiment      — fault coordinates, outcome, EDM, detection latency,
//                     end iteration, wall time; one per experiment.  Value
//                     failures probed for propagation carry a "propagation"
//                     sub-object
//   campaign_extended — control-plane extend applied: the new experiment
//                     total (consumers take the max across occurrences)
//   campaign_end    — outcome tallies + total wall time
//
// Hot-path design: each worker appends formatted lines to a per-worker
// buffer guarded by its own (uncontended) mutex; only a full buffer
// (64 KiB) or a flush takes the shared sink mutex.  Experiment events
// therefore appear roughly in completion order, not sorted by id —
// consumers must key on the "id" field, never on line order.  Golden-run
// iteration records are the one ordering guarantee: they are flushed to the
// sink before the first experiment record (the compact codec depends on
// it).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "obs/trace_codec.hpp"

namespace earl::obs {

class JsonlEventLogger final : public CampaignObserver {
 public:
  /// File-backed (truncates). Check ok() before running the campaign.
  explicit JsonlEventLogger(const std::string& path);
  /// Stream-backed (tests); the sink must outlive the logger.
  explicit JsonlEventLogger(std::ostream& sink);
  ~JsonlEventLogger() override;

  bool ok() const { return out_ != nullptr && out_->good(); }

  /// Detail mode: when enabled the logger asks the runner for per-iteration
  /// records (wants_iterations()) and emits one `iteration` event each.
  /// Set before the campaign starts.
  void set_detail(bool enabled) { detail_ = enabled; }

  /// Encoding for the (very chatty) iteration records: kJsonl emits one
  /// JSON object each; kCompact emits the delta-encoded lines of
  /// trace_codec.hpp (≥4x smaller logs, bit-exact reconstruction).  All
  /// other events stay JSONL in both formats.  Set before the campaign
  /// starts; compact streams carry `"trace_format":"compact"` in
  /// campaign_start.
  void set_format(TraceFormat format) { format_ = format; }
  TraceFormat format() const { return format_; }

  void on_campaign_start(const fi::CampaignConfig& config,
                         const CampaignStartInfo& info) override;
  void on_golden_done(const fi::GoldenRun& golden) override;
  void on_experiment_done(std::size_t worker,
                          const fi::ExperimentResult& result,
                          std::uint64_t wall_ns) override;
  void on_campaign_extended(std::size_t worker,
                            std::size_t new_total) override;
  void on_campaign_end(const fi::CampaignResult& result) override;
  bool wants_iterations() const override { return detail_; }
  void on_iteration(std::size_t worker,
                    const IterationRecord& record) override;

  /// Drains every worker buffer to the sink (also done by campaign_end and
  /// the destructor).
  void flush();

 private:
  /// Per-worker line buffer.  The worker appending and any thread flushing
  /// both take `mutex`; the sink mutex is only ever acquired afterwards
  /// (worker mutex -> sink mutex, never the reverse).
  struct WorkerBuffer {
    std::mutex mutex;
    std::string data;
  };

  void write_line(const std::string& line);  // takes the sink mutex
  void append_buffered(std::size_t worker, std::string line);

  std::ofstream file_;
  std::ostream* out_ = nullptr;
  std::mutex mutex_;  // guards *out_
  std::vector<std::unique_ptr<WorkerBuffer>> buffers_;  // index = worker id
  bool detail_ = false;
  TraceFormat format_ = TraceFormat::kJsonl;
  CompactTraceEncoder encoder_;
};

}  // namespace earl::obs
