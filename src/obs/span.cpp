#include "obs/span.hpp"

#include <algorithm>
#include <chrono>

#include "obs/json.hpp"

namespace earl::obs {
namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* span_phase_name(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kCampaign: return "campaign";
    case SpanPhase::kSampleFaults: return "sample_faults";
    case SpanPhase::kGoldenRun: return "golden_run";
    case SpanPhase::kClaim: return "claim";
    case SpanPhase::kSetup: return "setup";
    case SpanPhase::kGoldenReplay: return "golden_replay";
    case SpanPhase::kInject: return "inject";
    case SpanPhase::kPostInjectRun: return "post_inject_run";
    case SpanPhase::kClassify: return "classify";
    case SpanPhase::kProbe: return "probe";
    case SpanPhase::kStore: return "store";
    case SpanPhase::kTargetReset: return "target_reset";
    case SpanPhase::kHttpRequest: return "http_request";
    case SpanPhase::kControl: return "control";
    case SpanPhase::kCheckpointRestore: return "checkpoint_restore";
    case SpanPhase::kResidualReplay: return "residual_replay";
  }
  return "unknown";
}

SpanTrack::SpanTrack(const SpanTracer* tracer, std::string name,
                     std::size_t capacity)
    : tracer_(tracer),
      name_(std::move(name)),
      capacity_(round_up_pow2(std::max<std::size_t>(capacity, 2))),
      mask_(capacity_ - 1),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

std::int64_t SpanTrack::now() const { return tracer_->now(); }

void SpanTrack::emit(SpanPhase phase, std::int64_t begin_ns,
                     std::int64_t end_ns, std::uint64_t arg) {
  const std::uint64_t index = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[index & mask_];
  // Invalidate before overwriting so a concurrent snapshot's seq re-check
  // rejects any copy that straddles this write.
  slot.seq.store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.phase.store(static_cast<std::uint8_t>(phase),
                   std::memory_order_relaxed);
  slot.begin_ns.store(begin_ns, std::memory_order_relaxed);
  slot.end_ns.store(end_ns, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.seq.store(index + 1, std::memory_order_release);
}

std::vector<SpanRecord> SpanTrack::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t lo = head > capacity_ ? head - capacity_ : 0;
  std::vector<SpanRecord> out;
  out.reserve(static_cast<std::size_t>(head - lo));
  for (std::uint64_t index = lo; index < head; ++index) {
    const Slot& slot = slots_[index & mask_];
    if (slot.seq.load(std::memory_order_acquire) != index + 1) {
      continue;  // overwritten by a newer span, or still being written
    }
    SpanRecord record;
    record.phase =
        static_cast<SpanPhase>(slot.phase.load(std::memory_order_relaxed));
    record.begin_ns = slot.begin_ns.load(std::memory_order_relaxed);
    record.end_ns = slot.end_ns.load(std::memory_order_relaxed);
    record.arg = slot.arg.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != index + 1) {
      continue;  // torn: a writer claimed the slot mid-copy
    }
    out.push_back(record);
  }
  return out;
}

SpanTracer::SpanTracer(Options options) : options_(std::move(options)) {
  if (options_.sample_every == 0) options_.sample_every = 1;
}

std::int64_t SpanTracer::now() const {
  return options_.now_ns ? options_.now_ns() : steady_now_ns();
}

SpanTrack* SpanTracer::track(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& track : tracks_) {
    if (track->name() == name) return track.get();
  }
  tracks_.push_back(std::unique_ptr<SpanTrack>(
      new SpanTrack(this, std::string(name), options_.track_capacity)));
  return tracks_.back().get();
}

std::vector<SpanTracer::TrackSnapshot> SpanTracer::snapshot() const {
  // Copy the pointers under the lock, read the rings outside it: emitters
  // never touch mutex_ and track pointers are stable.
  std::vector<SpanTrack*> tracks;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tracks.reserve(tracks_.size());
    for (const auto& track : tracks_) tracks.push_back(track.get());
  }
  std::vector<TrackSnapshot> out;
  out.reserve(tracks.size());
  for (const SpanTrack* track : tracks) {
    TrackSnapshot snap;
    snap.name = track->name();
    snap.emitted = track->emitted();
    snap.dropped = track->dropped();
    snap.spans = track->snapshot();
    out.push_back(std::move(snap));
  }
  return out;
}

std::uint64_t SpanTracer::total_emitted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& track : tracks_) total += track->emitted();
  return total;
}

std::uint64_t SpanTracer::total_dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& track : tracks_) total += track->dropped();
  return total;
}

std::string render_chrome_trace(
    const std::vector<SpanTracer::TrackSnapshot>& tracks,
    std::uint64_t sample_every) {
  // Rebase timestamps so the trace starts at ts=0 regardless of the
  // steady-clock epoch (Perfetto renders absolute nanosecond epochs as a
  // useless far-future offset otherwise).
  std::int64_t base_ns = 0;
  bool have_base = false;
  std::uint64_t total_spans = 0;
  std::uint64_t total_dropped = 0;
  for (const auto& track : tracks) {
    total_spans += track.spans.size();
    total_dropped += track.dropped;
    for (const auto& span : track.spans) {
      if (!have_base || span.begin_ns < base_ns) {
        base_ns = span.begin_ns;
        have_base = true;
      }
    }
  }

  std::string out;
  out.reserve(128 + total_spans * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"earl\","
         "\"sample_every\":";
  out += std::to_string(sample_every);
  out += ",\"spans\":";
  out += std::to_string(total_spans);
  out += ",\"dropped\":";
  out += std::to_string(total_dropped);
  out += "},\"traceEvents\":[";

  bool first = true;
  const auto append = [&](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += event;
  };

  append(std::string("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,"
                     "\"name\":\"process_name\",\"args\":{\"name\":"
                     "\"earl campaign\"}}"));
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    std::string event = "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    event += std::to_string(i);
    event += ",\"ts\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"";
    event += json_escape(tracks[i].name);
    event += "\"}}";
    append(event);
  }

  for (std::size_t i = 0; i < tracks.size(); ++i) {
    for (const auto& span : tracks[i].spans) {
      const std::int64_t begin = span.begin_ns - base_ns;
      const std::int64_t dur =
          span.end_ns > span.begin_ns ? span.end_ns - span.begin_ns : 0;
      std::string event = "{\"ph\":\"X\",\"pid\":1,\"tid\":";
      event += std::to_string(i);
      event += ",\"ts\":";
      event += json_number(static_cast<double>(begin) / 1000.0);
      event += ",\"dur\":";
      event += json_number(static_cast<double>(dur) / 1000.0);
      event += ",\"cat\":\"earl\",\"name\":\"";
      event += span_phase_name(span.phase);
      event += "\"";
      if (span.arg != kSpanNoArg) {
        if (span.phase == SpanPhase::kControl) {
          event += ",\"args\":{\"command\":";
          event += std::to_string(span.arg);
          event += "}";
        } else {
          event += ",\"args\":{\"experiment\":";
          event += std::to_string(span.arg);
          event += "}";
        }
      }
      event += "}";
      append(event);
    }
  }

  out += "\n]}\n";
  return out;
}

std::string render_chrome_trace(const SpanTracer& tracer) {
  return render_chrome_trace(tracer.snapshot(), tracer.sample_every());
}

}  // namespace earl::obs
