#include "obs/db_observer.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace earl::obs {

void DatabaseObserver::on_campaign_start(const fi::CampaignConfig& config,
                                         const CampaignStartInfo& info) {
  (void)info;
  const std::lock_guard<std::mutex> lock(mutex_);
  database_ = fi::ResultDatabase(config.name, config.seed);
  save_ok_.reset();
}

void DatabaseObserver::on_golden_done(const fi::GoldenRun& golden) {
  const std::lock_guard<std::mutex> lock(mutex_);
  database_.set_total_time(golden.total_time);
}

void DatabaseObserver::on_experiment_done(std::size_t worker,
                                          const fi::ExperimentResult& result,
                                          std::uint64_t wall_ns) {
  (void)worker;
  (void)wall_ns;
  const std::lock_guard<std::mutex> lock(mutex_);
  database_.insert(result);
}

void DatabaseObserver::on_campaign_end(const fi::CampaignResult& result) {
  (void)result;
  const std::lock_guard<std::mutex> lock(mutex_);
  // Workers race, so insertions arrive interleaved; re-sorting by id makes
  // the streamed database indistinguishable from ResultDatabase(result).
  std::vector<fi::ExperimentResult> sorted = database_.all();
  std::sort(sorted.begin(), sorted.end(),
            [](const fi::ExperimentResult& a, const fi::ExperimentResult& b) {
              return a.id < b.id;
            });
  fi::ResultDatabase rebuilt(database_.campaign_name(), database_.seed());
  rebuilt.set_total_time(database_.total_time());
  for (fi::ExperimentResult& e : sorted) rebuilt.insert(e);
  database_ = std::move(rebuilt);
  if (!path_.empty()) save_ok_ = database_.save(path_);
}

}  // namespace earl::obs
