// MetricsCollector — the CampaignObserver that feeds a MetricsRegistry —
// and the per-mechanism detection-latency report the Table 2/3 benches
// print (data the paper's tables leave implicit: *how fast* each EDM
// catches the errors it catches, in dynamic instructions).
#pragma once

#include <array>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"

namespace earl::obs {

/// Fills a registry with the canonical campaign metrics:
///
///   campaign.outcome.<slug>            counter, one per classification
///   campaign.edm.<slug>                counter, detected experiments per EDM
///   campaign.detection_latency         histogram, injection->detection
///   campaign.detection_latency.<slug>  histogram, same but per EDM
///   campaign.experiment_wall_us        histogram, per-experiment wall time
///   campaign.end_iteration             histogram, where experiments stopped
///   tvm.instret.<mnemonic>             counter, instruction mix (profiled)
///   tvm.cache.{hits,misses,writebacks} counter, data-cache traffic
///   tvm.edm_raised.<slug>              counter, raw EDM triggers (profiled)
///   campaign.{experiments,workers,...} gauges, campaign facts
///
/// All instrument handles are resolved in the constructor, so the
/// per-experiment path is a handful of relaxed atomic ops.
class MetricsCollector final : public CampaignObserver {
 public:
  explicit MetricsCollector(MetricsRegistry& registry);

  void on_campaign_start(const fi::CampaignConfig& config,
                         const CampaignStartInfo& info) override;
  void on_golden_done(const fi::GoldenRun& golden) override;
  void on_experiment_done(std::size_t worker,
                          const fi::ExperimentResult& result,
                          std::uint64_t wall_ns) override;
  void on_worker_profile(std::size_t worker,
                         const TargetProfile& profile) override;
  void on_campaign_end(const fi::CampaignResult& result) override;

  MetricsRegistry& registry() { return registry_; }

 private:
  MetricsRegistry& registry_;
  std::array<Counter*, analysis::kOutcomeCount> outcome_counters_{};
  std::array<Counter*, tvm::kEdmCount> edm_counters_{};
  std::array<Histogram*, tvm::kEdmCount> latency_histograms_{};
  Histogram* latency_all_ = nullptr;
  Histogram* wall_us_ = nullptr;
  Histogram* end_iteration_ = nullptr;

  std::mutex profile_mutex_;
  TargetProfile merged_profile_;
};

/// ASCII table of detection latency (injection -> detection, in dynamic
/// instructions) per error-detection mechanism, computed from a finished
/// campaign's experiment records.  Mechanisms with no detections are
/// omitted; a Total row closes the table.
std::string render_detection_latency_table(const fi::CampaignResult& result);

}  // namespace earl::obs
