// Minimal, dependency-free blocking-socket HTTP/1.1 server primitives.
//
// Just enough protocol for a telemetry sidecar: GET-oriented request
// parsing (incremental and size-capped, so a hostile or broken client can
// send at most max_request_bytes before being rejected), deterministic
// response rendering, and a small server — one acceptor thread plus a
// bounded pool of handler threads.  No external dependencies: POSIX
// sockets only, matching the project-wide "no new libraries" rule.
//
// Threading model:
//   * accept_loop() runs on its own thread and only accepts + enqueues.
//   * `handler_threads` workers pull connections from a bounded queue and
//     run the user handler; when the queue is full new connections get an
//     immediate 503 instead of stalling the acceptor.
//   * The handler writes its own response (HttpConnection::send_response)
//     or takes the connection over for streaming (begin_stream) — used by
//     the Server-Sent Events endpoint, which never returns to keep-alive.
//   * stop() (also run by the destructor) closes the listener, shuts down
//     every in-flight connection, and joins all threads.  Blocking reads
//     and SSE waits are poll()-bounded, so stop completes promptly.
//
// Nothing here knows about campaigns; obs::TelemetryServer composes this
// with the observer layer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace earl::obs {

struct HttpRequest {
  std::string method;           // "GET"
  std::string target;           // origin-form, e.g. "/metrics?live=1"
  int version_minor = 1;        // HTTP/1.<version_minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// `target` up to (not including) the query string.
  std::string path() const;
  /// The raw query string after '?' ("" when absent).
  std::string query() const;
  /// Value of `name` in the query string; "" when absent.  '+' and %XX
  /// escapes are decoded in the value (enough for the control endpoints'
  /// small integer/word arguments).
  std::string query_param(std::string_view name) const;
  /// Case-insensitive header lookup; "" when absent.
  std::string header(std::string_view name) const;
  /// HTTP/1.1 defaults to keep-alive unless "Connection: close";
  /// HTTP/1.0 defaults to close unless "Connection: keep-alive".
  bool keep_alive() const;
};

enum class HttpParse {
  kOk,          // one full request parsed; *consumed bytes eaten
  kIncomplete,  // need more bytes
  kMalformed,   // not HTTP — reply 400 and close
  kTooLarge,    // exceeds max_bytes — reply 431 and close
};

/// Incremental parser: examines `buffer` (which may hold a partial request
/// or several pipelined ones) and fills `*out` + `*consumed` on kOk.
/// A request whose head + declared body exceed `max_bytes` is kTooLarge.
HttpParse parse_http_request(std::string_view buffer, HttpRequest* out,
                             std::size_t* consumed,
                             std::size_t max_bytes = 8192);

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Rendered verbatim after Content-Length (e.g. the `Deprecation` header
  /// on legacy-alias responses).  Names and values must be header-safe;
  /// callers only pass literals.
  std::vector<std::pair<std::string, std::string>> extra_headers = {};
};

/// Reason phrase for the handful of statuses this server emits.
std::string_view http_status_reason(int status);

/// The uniform v1 error envelope: `{"error","detail","status"}` as
/// application/json.  `error` is a stable machine-readable slug
/// ("not_found", "unauthorized", ...); `detail` is the human-readable
/// explanation the pre-v1 plain-text bodies used to carry.
HttpResponse json_error_response(int status, std::string_view error,
                                 std::string_view detail);

/// Length-independent comparison for bearer tokens: scans all of `a`
/// regardless of where the first mismatch is, so timing does not leak the
/// matching prefix length.  Unequal lengths compare unequal.
bool constant_time_equal(std::string_view a, std::string_view b);

/// Full wire form: status line, Content-Type/Length, Connection, blank
/// line, body.
std::string render_http_response(const HttpResponse& response,
                                 bool keep_alive);

/// A connected client socket, owned by the serving thread for the duration
/// of the handler call.
class HttpConnection {
 public:
  explicit HttpConnection(int fd) : fd_(fd) {}

  /// Sends every byte (MSG_NOSIGNAL; EINTR retried).  On failure the
  /// connection is marked dead and false is returned.
  bool write_all(std::string_view data);
  bool send_response(const HttpResponse& response, bool keep_alive);

  /// Switches to streaming: sends the response head with the given content
  /// type and "Connection: close", after which the handler writes the body
  /// incrementally with write_all().  The server closes the socket when
  /// the handler returns; keep-alive never resumes.  `extra_headers` (if
  /// any) are rendered into the head — used for the Deprecation header on
  /// the legacy /events alias.
  bool begin_stream(std::string_view content_type,
                    const std::vector<std::pair<std::string, std::string>>&
                        extra_headers = {});

  bool streaming() const { return streaming_; }
  bool alive() const { return alive_; }
  int fd() const { return fd_; }

 private:
  int fd_;
  bool streaming_ = false;
  bool alive_ = true;
};

class HttpServer {
 public:
  /// Handles one parsed request; must send a response (or begin a stream)
  /// on `connection` before returning.  Called concurrently from up to
  /// `handler_threads` threads.
  using Handler = std::function<void(const HttpRequest&, HttpConnection&)>;

  struct Options {
    std::string address = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = kernel-assigned (tests); port() tells
    std::size_t handler_threads = 4;
    std::size_t max_pending = 16;        // accepted-but-unserved bound
    std::size_t max_request_bytes = 8192;
    int idle_timeout_ms = 5000;          // keep-alive connections
  };

  HttpServer(Handler handler, Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds + listens + spawns the threads.  On failure returns false with
  /// an actionable message ("bind: Address already in use", ...).
  bool start(std::string* error);
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves kernel-assigned port 0); 0 before start().
  std::uint16_t port() const { return port_; }
  const std::string& address() const { return options_.address; }
  /// "http://<address>:<port>".
  std::string url() const;

 private:
  void accept_loop();
  void handler_loop();
  void serve_connection(int fd);
  void track(int fd);
  void untrack(int fd);

  Handler handler_;
  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;

  std::mutex active_mutex_;
  std::set<int> active_;  // fds currently inside serve_connection
};

/// One blocking request/response exchange (the client side of the
/// primitives above): connect, send, read to EOF ("Connection: close"
/// framing), split status/headers/body.  Deliberately not a general
/// client — IPv4 only (dotted quad or "localhost"), no TLS, no redirects,
/// no chunked encoding.  Used by worker→coordinator RPCs, the bench's
/// scrape-under-load measurement, and smoke tests.  nullopt on
/// connect/send/parse failure.
struct HttpGetResult {
  int status = 0;
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;

  /// Case-insensitive response-header lookup; "" when absent.
  std::string header(std::string_view name) const;
};

struct HttpClientRequest {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string method = "GET";
  std::string target = "/";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;  // sent with Content-Length when non-empty or non-GET
};
std::optional<HttpGetResult> http_request(const HttpClientRequest& request);

/// Shorthand for a loopback GET (the common scrape case).
std::optional<HttpGetResult> http_get(std::uint16_t port,
                                      std::string_view target);

}  // namespace earl::obs
