// Execution profile of a fault-injection target.
//
// GOOFI's detail mode records what the target actually executed; the cheap
// always-on equivalent here is a counter block the target fills while it
// runs: retired instructions per opcode (the instruction mix), data-cache
// hit/miss/write-back totals, and how often each hardware EDM fired.  A
// profile is plain data — workers each own one and the campaign observer
// merges them at the end, so the hot path never takes a lock.
#pragma once

#include <array>
#include <cstdint>

#include "tvm/edm.hpp"

namespace earl::obs {

/// One slot per possible 6-bit TVM opcode value (invalid slots stay zero).
inline constexpr std::size_t kOpcodeSlots = 64;

struct TargetProfile {
  std::array<std::uint64_t, kOpcodeSlots> instret_by_opcode{};
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_writebacks = 0;
  std::array<std::uint64_t, tvm::kEdmCount> edm_raised{};

  /// Total retired instructions (sum over the opcode slots).
  std::uint64_t instret_total() const;

  /// Element-wise accumulation of another worker's profile.
  void merge(const TargetProfile& other);

  /// True when nothing was recorded (profiling disabled or unsupported).
  bool empty() const;
};

}  // namespace earl::obs
