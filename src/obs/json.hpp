// Minimal JSON helpers shared by the event log, the metrics exporter and
// the bench telemetry layer.  Two halves:
//
//   * Emission (json_escape / json_number / JsonObject) — the JSONL event
//     contract: one object per line, deterministic field order.
//   * Parsing (json_parse) — a strict RFC 8259 recursive-descent reader
//     used by the bench-report round-trip and `earl-bench-diff`.  Strict
//     means: no trailing commas, no comments, no bare NaN/Inf, no trailing
//     garbage after the document, \uXXXX escapes decoded to UTF-8.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace earl::obs {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string json_escape(std::string_view s);

/// Shortest-round-trip style formatting for a double JSON value: integral
/// values print without a trailing ".0"; NaN/Inf (not representable in
/// JSON) print as 0.
std::string json_number(double v);

/// Incremental builder for one JSON object on a single line (the JSONL
/// contract).  Keys must be pre-escaped (ours are literals).
class JsonObject {
 public:
  JsonObject() : out_("{") {}

  JsonObject& field(std::string_view key, std::string_view string_value);
  JsonObject& field(std::string_view key, const char* string_value) {
    return field(key, std::string_view(string_value));
  }
  JsonObject& field(std::string_view key, std::uint64_t value);
  JsonObject& field(std::string_view key, double value);
  JsonObject& field(std::string_view key, bool value);
  /// Inserts `raw` verbatim as the value (caller guarantees valid JSON).
  JsonObject& raw_field(std::string_view key, std::string_view raw);

  /// Closes the object; the builder must not be reused afterwards.
  std::string str() &&;

 private:
  void begin_field(std::string_view key);

  std::string out_;
  bool first_ = true;
};

/// A parsed JSON document node.  Object member order is preserved (the
/// emitters write deterministic field orders; the round-trip tests rely on
/// re-serialization being stable).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// First member with the given key; nullptr when absent or not an
  /// object.
  const JsonValue* find(std::string_view key) const;
};

/// Strict parse of one complete JSON document.  On failure returns nullopt
/// and, when `error` is non-null, stores a one-line message with the byte
/// offset ("offset 17: trailing comma in object").
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace earl::obs
