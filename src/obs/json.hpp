// Minimal JSON emission helpers shared by the event log and the metrics
// exporter.  Emission only — the observability layer writes JSON/JSONL for
// external consumers (jq, pandas, dashboards); it never parses it back.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace earl::obs {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string json_escape(std::string_view s);

/// Shortest-round-trip style formatting for a double JSON value: integral
/// values print without a trailing ".0"; NaN/Inf (not representable in
/// JSON) print as 0.
std::string json_number(double v);

/// Incremental builder for one JSON object on a single line (the JSONL
/// contract).  Keys must be pre-escaped (ours are literals).
class JsonObject {
 public:
  JsonObject() : out_("{") {}

  JsonObject& field(std::string_view key, std::string_view string_value);
  JsonObject& field(std::string_view key, const char* string_value) {
    return field(key, std::string_view(string_value));
  }
  JsonObject& field(std::string_view key, std::uint64_t value);
  JsonObject& field(std::string_view key, double value);
  JsonObject& field(std::string_view key, bool value);
  /// Inserts `raw` verbatim as the value (caller guarantees valid JSON).
  JsonObject& raw_field(std::string_view key, std::string_view raw);

  /// Closes the object; the builder must not be reused afterwards.
  std::string str() &&;

 private:
  void begin_field(std::string_view key);

  std::string out_;
  bool first_ = true;
};

}  // namespace earl::obs
