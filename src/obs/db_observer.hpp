// Streaming result-database observer.
//
// Fills a fi::ResultDatabase while the campaign runs, so `--events` and
// `--db` share one observer sink instead of the CLI materialising a second
// copy of the campaign after the fact.  Experiments arrive concurrently and
// out of order from worker threads; the observer collects them under a
// mutex and restores deterministic id order at campaign end, so the saved
// CSV is byte-identical to one built from the finished CampaignResult.
#pragma once

#include <mutex>
#include <optional>
#include <string>

#include "fi/database.hpp"
#include "obs/observer.hpp"

namespace earl::obs {

class DatabaseObserver final : public CampaignObserver {
 public:
  /// When `path` is non-empty, on_campaign_end saves the database there
  /// (check save_ok() afterwards).
  explicit DatabaseObserver(std::string path = "") : path_(std::move(path)) {}

  void on_campaign_start(const fi::CampaignConfig& config,
                         const CampaignStartInfo& info) override;
  void on_golden_done(const fi::GoldenRun& golden) override;
  void on_experiment_done(std::size_t worker,
                          const fi::ExperimentResult& result,
                          std::uint64_t wall_ns) override;
  void on_campaign_end(const fi::CampaignResult& result) override;

  /// The streamed database, sorted by experiment id after on_campaign_end.
  const fi::ResultDatabase& database() const { return database_; }

  /// Whether the save to `path` succeeded; nullopt before on_campaign_end
  /// or when no path was configured.
  std::optional<bool> save_ok() const { return save_ok_; }

 private:
  std::string path_;
  std::mutex mutex_;
  fi::ResultDatabase database_;
  std::optional<bool> save_ok_;
};

}  // namespace earl::obs
