// Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.
//
// The registry is the campaign's numeric backbone, in the DETOx spirit of
// per-detector cost/coverage accounting: anything a later performance PR
// wants to regress against gets a named metric here.  Design constraints:
//
//   * Instrument handles (Counter&, Gauge&, Histogram&) are resolved once
//     by name (one mutex acquisition) and are then lock-free to update —
//     plain std::atomic operations, safe from any number of worker threads.
//   * Handles stay valid for the registry's lifetime (instruments are
//     stored behind stable pointers; the name map only grows).
//   * Export is deterministic: instruments are emitted sorted by name, so
//     two runs with the same seed produce byte-identical JSON/CSV (modulo
//     wall-clock gauges the caller chooses to set).
//
// Naming convention: dot-separated lower_snake_case paths, unit suffix in
// the last component where applicable ("campaign.experiment_wall_us").
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace earl::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges in ascending
/// order; an implicit +inf bucket catches the overflow.  observe() is two
/// relaxed atomic adds plus a branch-light linear scan (bucket counts are
/// small — latency histograms have ~16 edges).
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size is bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate by linear interpolation within the straddling
  /// bucket (the same estimator as PromQL's histogram_quantile).  `q` is
  /// clamped to [0, 1].  Returns 0 on an empty histogram; quantiles that
  /// land in the +inf overflow bucket report the highest finite bound.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument.  The returned reference stays
  /// valid for the registry's lifetime.  Looking a name up as the wrong
  /// kind, or re-registering a histogram with different bounds, is a
  /// programming error (asserted in debug builds; first registration wins).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  /// Labels attached to an info-style gauge (earl_build_info and friends):
  /// a constant-1 sample whose identity lives in the label set.
  using InfoLabels = std::vector<std::pair<std::string, std::string>>;

  /// Label set identifying one member of a labeled family, rendered in the
  /// order given (callers keep the order stable so the member key is too).
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Finds or creates one member of a labeled family (the per-class
  /// criticality series: `earl_experiments_by_class{class=...,element=...}`).
  /// Same handle contract as the unlabeled instruments: resolved once under
  /// the mutex, lock-free to update, stable for the registry's lifetime.
  /// Exported as one `# HELP`/`# TYPE` block per family with samples sorted
  /// by rendered label set, label values escaped per the exposition format.
  /// Labeled members do not appear in counters_snapshot() — bench baselines
  /// track the unlabeled campaign counters only.
  Counter& labeled_counter(std::string_view family, const Labels& labels);
  Gauge& labeled_gauge(std::string_view family, const Labels& labels);

  /// Sets an info gauge: exported as `name{k="v",...} 1` in Prometheus,
  /// as a string-valued object under "info" in JSON, and as
  /// `info,name,k,v` rows in CSV.  Re-setting replaces the label set.
  void set_info(std::string_view name, InfoLabels labels);

  /// All counters, sorted by name (the bench reporter snapshots these into
  /// its JSON document).
  std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot()
      const;

  /// Snapshot export, instruments sorted by name.
  std::string to_json() const;
  std::string to_csv() const;
  /// Prometheus text exposition format: `# HELP`/`# TYPE` headers plus
  /// samples, instruments sorted by name.  Dots in metric names become
  /// underscores ("campaign.outcome.detected" -> "campaign_outcome_detected");
  /// histograms render as cumulative `_bucket{le="..."}` series plus
  /// `_sum`/`_count`, per the exposition-format spec.
  std::string to_prometheus() const;

  /// Help text attached to a metric's `# HELP` line (the metric need not
  /// exist yet; unhelped metrics fall back to their own name).
  void set_help(std::string_view name, std::string_view help);

  /// Lookup for tests/tools; nullptr when absent.
  const Counter* find_counter(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;
  const Counter* find_labeled_counter(std::string_view family,
                                      const Labels& labels) const;

 private:
  template <typename Instrument>
  using FamilyMembers =
      std::map<std::string, std::unique_ptr<Instrument>, std::less<>>;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, FamilyMembers<Counter>, std::less<>>
      counter_families_;
  std::map<std::string, FamilyMembers<Gauge>, std::less<>> gauge_families_;
  std::map<std::string, InfoLabels, std::less<>> infos_;
  std::map<std::string, std::string, std::less<>> help_;
};

/// Sanitizes a dot-path metric name into a Prometheus metric name: every
/// character outside [a-zA-Z0-9_:] becomes '_', and a leading digit gets a
/// '_' prefix.
std::string prometheus_name(std::string_view name);

/// Escapes a label *value* for Prometheus text exposition: backslash,
/// double-quote, and newline become `\\`, `\"`, `\n`.
std::string prometheus_label_escape(std::string_view value);

/// Renders one histogram as a Prometheus text-exposition block: HELP/TYPE
/// header, cumulative `_bucket{le="..."}` series, `_sum`, `_count`.
/// `prom` must already be a valid Prometheus metric name.  Shared between
/// the registry exporter and standalone histograms (the telemetry
/// server's own request-latency instrument).
std::string prometheus_histogram_block(std::string_view prom,
                                       std::string_view help,
                                       const Histogram& histogram);

/// Default bucket edges (in dynamic instructions) for detection-latency
/// histograms: roughly logarithmic, covering same-instruction detection up
/// to a full iteration's worth of distance.
std::span<const double> detection_latency_bounds();

/// Default bucket edges (in nanoseconds) for host-side latency histograms
/// (experiment-claim path, HTTP request handling): log-spaced from 100 ns
/// to 1 s.
std::span<const double> latency_ns_bounds();

}  // namespace earl::obs
