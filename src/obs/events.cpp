#include "obs/events.hpp"

#include "obs/json.hpp"
#include "obs/labels.hpp"

namespace earl::obs {

namespace {

constexpr std::size_t kFlushThreshold = 64 * 1024;

const char* fault_kind_name(fi::FaultKind kind) {
  switch (kind) {
    case fi::FaultKind::kSingleBitFlip: return "single_bit_flip";
    case fi::FaultKind::kMultiBitFlip: return "multi_bit_flip";
    case fi::FaultKind::kStuckAt0: return "stuck_at_0";
    case fi::FaultKind::kStuckAt1: return "stuck_at_1";
  }
  return "unknown";
}

std::string bits_array(const std::vector<std::size_t>& bits) {
  std::string out = "[";
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i) out.push_back(',');
    out += std::to_string(bits[i]);
  }
  out.push_back(']');
  return out;
}

}  // namespace

JsonlEventLogger::JsonlEventLogger(const std::string& path)
    : file_(path, std::ios::out | std::ios::trunc) {
  if (file_.is_open()) out_ = &file_;
}

JsonlEventLogger::JsonlEventLogger(std::ostream& sink) : out_(&sink) {}

JsonlEventLogger::~JsonlEventLogger() { flush(); }

void JsonlEventLogger::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_ != nullptr) *out_ << line << '\n';
}

void JsonlEventLogger::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_ == nullptr) return;
  for (std::string& buffer : buffers_) {
    if (buffer.empty()) continue;
    *out_ << buffer;
    buffer.clear();
  }
  out_->flush();
}

void JsonlEventLogger::on_campaign_start(const fi::CampaignConfig& config,
                                         const CampaignStartInfo& info) {
  buffers_.assign(info.workers, std::string());
  JsonObject event;
  event.field("event", "campaign_start")
      .field("campaign", config.name)
      .field("experiments", static_cast<std::uint64_t>(config.experiments))
      .field("seed", config.seed)
      .field("iterations", static_cast<std::uint64_t>(config.iterations))
      .field("fault_kind", fault_kind_name(config.fault.kind))
      .field("fault_multiplicity",
             static_cast<std::uint64_t>(config.fault.multiplicity))
      .field("workers", static_cast<std::uint64_t>(info.workers))
      .field("fault_space_bits", info.fault_space_bits)
      .field("register_partition_bits", info.register_partition_bits);
  write_line(std::move(event).str());
}

void JsonlEventLogger::on_golden_done(const fi::GoldenRun& golden) {
  JsonObject event;
  event.field("event", "golden_run")
      .field("total_time", golden.total_time)
      .field("max_iteration_time", golden.max_iteration_time)
      .field("outputs", static_cast<std::uint64_t>(golden.outputs.size()));
  write_line(std::move(event).str());
}

void JsonlEventLogger::on_experiment_done(std::size_t worker,
                                          const fi::ExperimentResult& result,
                                          std::uint64_t wall_ns) {
  JsonObject event;
  event.field("event", "experiment")
      .field("id", result.id)
      .field("worker", static_cast<std::uint64_t>(worker))
      .raw_field("bits", bits_array(result.fault.bits))
      .field("time", result.fault.time)
      .field("cache", result.cache_location)
      .field("outcome", outcome_slug(result.outcome))
      .field("end_iteration", static_cast<std::uint64_t>(result.end_iteration))
      .field("wall_ns", wall_ns);
  if (result.outcome == analysis::Outcome::kDetected) {
    event.field("edm", edm_slug(result.edm))
        .field("detection_distance", result.detection_distance);
  } else if (analysis::is_value_failure(result.outcome)) {
    event.field("first_strong",
                static_cast<std::uint64_t>(result.first_strong))
        .field("strong_count", static_cast<std::uint64_t>(result.strong_count))
        .field("max_deviation", result.max_deviation);
  }
  std::string line = std::move(event).str();
  line.push_back('\n');

  if (worker < buffers_.size()) {
    std::string& buffer = buffers_[worker];
    buffer += line;
    if (buffer.size() >= kFlushThreshold) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (out_ != nullptr) *out_ << buffer;
      buffer.clear();
    }
  } else {
    // Defensive: an unknown worker id (observer attached mid-run) still logs.
    line.pop_back();
    write_line(line);
  }
}

void JsonlEventLogger::on_campaign_end(const fi::CampaignResult& result) {
  flush();
  std::string outcomes = "{";
  for (std::size_t o = 0; o < analysis::kOutcomeCount; ++o) {
    if (o) outcomes.push_back(',');
    outcomes += "\"" +
                outcome_slug(static_cast<analysis::Outcome>(o)) +
                "\":" + std::to_string(
                            result.count(static_cast<analysis::Outcome>(o)));
  }
  outcomes.push_back('}');
  JsonObject event;
  event.field("event", "campaign_end")
      .field("campaign", result.config.name)
      .field("experiments",
             static_cast<std::uint64_t>(result.experiments.size()))
      .raw_field("outcomes", outcomes);
  write_line(std::move(event).str());
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_ != nullptr) out_->flush();
}

}  // namespace earl::obs
