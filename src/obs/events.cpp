#include "obs/events.hpp"

#include "obs/json.hpp"
#include "obs/labels.hpp"

namespace earl::obs {

namespace {

constexpr std::size_t kFlushThreshold = 64 * 1024;

std::string bits_array(const std::vector<std::size_t>& bits) {
  std::string out = "[";
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i) out.push_back(',');
    out += std::to_string(bits[i]);
  }
  out.push_back(']');
  return out;
}

}  // namespace

JsonlEventLogger::JsonlEventLogger(const std::string& path)
    : file_(path, std::ios::out | std::ios::trunc) {
  if (file_.is_open()) out_ = &file_;
}

JsonlEventLogger::JsonlEventLogger(std::ostream& sink) : out_(&sink) {}

JsonlEventLogger::~JsonlEventLogger() { flush(); }

void JsonlEventLogger::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_ != nullptr) *out_ << line << '\n';
}

void JsonlEventLogger::flush() {
  // Drain each worker buffer under its own mutex first, then write under
  // the sink mutex — the same order append_buffered uses, so a flush racing
  // a mid-campaign append sees either the whole line or none of it.
  std::string drained;
  for (const std::unique_ptr<WorkerBuffer>& buffer : buffers_) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    drained += buffer->data;
    buffer->data.clear();
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_ == nullptr) return;
  if (!drained.empty()) *out_ << drained;
  out_->flush();
}

void JsonlEventLogger::on_campaign_start(const fi::CampaignConfig& config,
                                         const CampaignStartInfo& info) {
  buffers_.clear();
  buffers_.reserve(info.workers);
  for (std::size_t w = 0; w < info.workers; ++w) {
    buffers_.push_back(std::make_unique<WorkerBuffer>());
  }
  JsonObject event;
  event.field("event", "campaign_start")
      .field("campaign", config.name)
      .field("experiments", static_cast<std::uint64_t>(config.experiments))
      .field("seed", config.seed)
      .field("iterations", static_cast<std::uint64_t>(config.iterations))
      .field("fault_kind", fault_kind_slug(config.fault.kind))
      .field("fault_multiplicity",
             static_cast<std::uint64_t>(config.fault.multiplicity))
      .field("workers", static_cast<std::uint64_t>(info.workers))
      .field("fault_space_bits", info.fault_space_bits)
      .field("register_partition_bits", info.register_partition_bits);
  if (format_ == TraceFormat::kCompact) {
    event.field("trace_format", trace_format_slug(format_));
  }
  write_line(std::move(event).str());
}

void JsonlEventLogger::on_golden_done(const fi::GoldenRun& golden) {
  // Pin the buffered golden iteration records ahead of every experiment
  // record: the compact decoder deltas experiment iterations against the
  // golden record at the same k, so file order matters.
  flush();
  JsonObject event;
  event.field("event", "golden_run")
      .field("total_time", golden.total_time)
      .field("max_iteration_time", golden.max_iteration_time)
      .field("outputs", static_cast<std::uint64_t>(golden.outputs.size()));
  write_line(std::move(event).str());
}

void JsonlEventLogger::append_buffered(std::size_t worker, std::string line) {
  if (worker >= buffers_.size()) {
    // Defensive: an unknown worker id (observer attached mid-run) still logs.
    write_line(line);
    return;
  }
  line.push_back('\n');
  WorkerBuffer& buffer = *buffers_[worker];
  std::string full;
  {
    const std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.data += line;
    if (buffer.data.size() >= kFlushThreshold) full.swap(buffer.data);
  }
  if (!full.empty()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (out_ != nullptr) *out_ << full;
  }
}

void JsonlEventLogger::on_campaign_extended(std::size_t worker,
                                            std::size_t new_total) {
  JsonObject event;
  event.field("event", "campaign_extended")
      .field("worker", static_cast<std::uint64_t>(worker))
      .field("experiments", static_cast<std::uint64_t>(new_total));
  append_buffered(worker, std::move(event).str());
}

void JsonlEventLogger::on_experiment_done(std::size_t worker,
                                          const fi::ExperimentResult& result,
                                          std::uint64_t wall_ns) {
  JsonObject event;
  event.field("event", "experiment")
      .field("id", result.id)
      .field("worker", static_cast<std::uint64_t>(worker))
      .raw_field("bits", bits_array(result.fault.bits))
      .field("time", result.fault.time)
      .field("cache", result.cache_location)
      .field("outcome", outcome_slug(result.outcome))
      .field("end_iteration", static_cast<std::uint64_t>(result.end_iteration))
      .field("wall_ns", wall_ns);
  if (result.outcome == analysis::Outcome::kDetected) {
    event.field("edm", edm_slug(result.edm))
        .field("detection_distance", result.detection_distance);
  } else if (analysis::is_value_failure(result.outcome)) {
    event.field("first_strong",
                static_cast<std::uint64_t>(result.first_strong))
        .field("strong_count", static_cast<std::uint64_t>(result.strong_count))
        .field("max_deviation", result.max_deviation);
  }
  if (result.propagation) {
    const analysis::PropagationRecord& p = *result.propagation;
    JsonObject prop;
    prop.field("diverged", p.diverged);
    if (p.diverged) {
      prop.field("step", static_cast<std::uint64_t>(p.divergence_step))
          .field("pc", static_cast<std::uint64_t>(p.divergence_pc))
          .field("regs", static_cast<std::uint64_t>(p.corrupted_regs));
    }
    if (p.reached_memory) {
      prop.field("memory_step", static_cast<std::uint64_t>(p.memory_step))
          .field("memory_address",
                 static_cast<std::uint64_t>(p.memory_address));
    }
    if (p.control_flow_diverged) {
      prop.field("cf_step", static_cast<std::uint64_t>(p.control_flow_step));
    }
    event.raw_field("propagation", std::move(prop).str());
  }
  append_buffered(worker, std::move(event).str());
}

void JsonlEventLogger::on_iteration(std::size_t worker,
                                    const IterationRecord& record) {
  if (format_ == TraceFormat::kCompact) {
    // Golden records append to the encoder's delta base from the campaign
    // thread, strictly before workers start encoding experiment records
    // against it (pinned by the on_golden_done flush).
    append_buffered(worker, encoder_.encode(record));
    return;
  }
  JsonObject event;
  event.field("event", "iteration");
  if (record.experiment == kGoldenExperimentId) {
    event.field("golden", true);
  } else {
    event.field("id", record.experiment);
  }
  event.field("k", static_cast<std::uint64_t>(record.iteration))
      .field("r", static_cast<double>(record.reference))
      .field("y", static_cast<double>(record.measurement))
      .field("u", static_cast<double>(record.output))
      .field("u_golden", static_cast<double>(record.golden_output))
      .field("deviation", static_cast<double>(record.deviation))
      .field("state", static_cast<double>(record.state));
  // The flags are rare and default false; emit only when set to keep the
  // (very chatty) iteration stream lean.
  if (record.assertion_fired) event.field("assertion", true);
  if (record.recovery_fired) event.field("recovery", true);
  event.field("elapsed", record.elapsed);
  append_buffered(worker, std::move(event).str());
}

void JsonlEventLogger::on_campaign_end(const fi::CampaignResult& result) {
  flush();
  std::string outcomes = "{";
  for (std::size_t o = 0; o < analysis::kOutcomeCount; ++o) {
    if (o) outcomes.push_back(',');
    outcomes += "\"" +
                outcome_slug(static_cast<analysis::Outcome>(o)) +
                "\":" + std::to_string(
                            result.count(static_cast<analysis::Outcome>(o)));
  }
  outcomes.push_back('}');
  JsonObject event;
  event.field("event", "campaign_end")
      .field("campaign", result.config.name)
      .field("experiments",
             static_cast<std::uint64_t>(result.experiments.size()))
      .raw_field("outcomes", outcomes);
  write_line(std::move(event).str());
  const std::lock_guard<std::mutex> lock(mutex_);
  if (out_ != nullptr) out_->flush();
}

}  // namespace earl::obs
