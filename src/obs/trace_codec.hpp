// Compact detail-trace encoding (the "make detail mode cheap enough to
// leave on" codec).
//
// A JSONL `iteration` event is ~150 bytes, and a detail-mode campaign emits
// one per output-producing iteration — gigabytes for a full Table-2 run.
// The compact format replaces only those events with delta-encoded text
// lines; every other event (campaign_start, golden_run, experiment,
// campaign_end) stays JSONL, so one file mixes both and consumers dispatch
// per line.  Reconstruction is bit-exact: float fields travel as IEEE-754
// bit patterns, never as decimal round-trips.
//
// Line grammar (fields space-separated, hex lowercase, no leading zeros):
//
//   golden      G <k> [y u state dev r u_golden flags elapsed]
//   experiment  I <id> <k> [y u state dev r u_golden flags elapsed]
//
// A golden line's fields are XOR deltas against the previous golden record
// (a zero record for k = 0).  An experiment line's fields are XOR deltas
// against the golden record at the same k — r and u_golden delta to zero by
// construction, y/u/state delta to zero until the fault's effect reaches
// the loop, and dev deltas against |u - u_golden| recomputed by the reader,
// which the runner's own deviation computation matches exactly.  `flags`
// (assertion | recovery << 1) is absolute, not a delta.  Trailing zero
// fields are dropped, so the overwhelmingly common pre-divergence record is
// just "I <id> <k>" — ~10 bytes against ~150 for its JSONL twin.
//
// Ordering contract: every golden line precedes every experiment line (the
// logger flushes worker buffers at on_golden_done to pin this), because the
// decoder needs the golden record at k to undo an experiment delta.
// Experiment lines referencing a golden k the decoder has not seen decode
// against a zero record — matching an encoder that had no golden record
// either (unit-test usage) — except that a *partial* golden table cannot
// happen in a well-formed file: golden lines are contiguous and first.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/observer.hpp"

namespace earl::obs {

/// Detail-trace encoding selected by `earl-goofi --trace-format`.
enum class TraceFormat : std::uint8_t {
  kJsonl,    // one JSON object per iteration event (the PR-2 format)
  kCompact,  // delta-encoded iteration lines, everything else JSONL
};

/// Parses a --trace-format value ("jsonl" | "compact"); nullopt otherwise.
std::optional<TraceFormat> parse_trace_format(std::string_view name);

/// Stable slug for a format ("jsonl" | "compact"), the inverse of
/// parse_trace_format; also the `trace_format` value in campaign_start.
std::string trace_format_slug(TraceFormat format);

/// Stateful encoder: one per event log.  Golden records (experiment ==
/// kGoldenExperimentId) must all be encoded before the first experiment
/// record and are retained as the delta base.  encode() is const after the
/// golden run, so concurrent calls from worker threads are safe — the
/// runner starts workers only after on_golden_done.
class CompactTraceEncoder {
 public:
  /// Returns the encoded line, without a trailing newline.
  std::string encode(const IterationRecord& record);

 private:
  std::vector<IterationRecord> golden_;
};

/// Stateful decoder: feed every compact line of one stream, in file order.
class CompactTraceDecoder {
 public:
  /// True when `line` is a compact iteration line ("G " / "I " prefix) as
  /// opposed to a JSONL event; dispatch before decode().
  static bool is_compact_line(std::string_view line);

  /// Decodes one line; nullopt when malformed (bad token, wrong field
  /// count, or a golden line out of sequence).  Golden records are retained
  /// as the delta base for subsequent experiment lines.
  std::optional<IterationRecord> decode(std::string_view line);

  /// Golden records decoded so far, in iteration order.
  const std::vector<IterationRecord>& golden() const { return golden_; }

 private:
  std::vector<IterationRecord> golden_;
};

}  // namespace earl::obs
