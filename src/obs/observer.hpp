// Campaign observation interface.
//
// `fi::CampaignRunner::run` drives thousands of deterministic experiments
// across worker threads; a CampaignObserver is how telemetry taps that loop
// without touching its semantics.  The contract:
//
//   * Observation is passive — attaching an observer MUST NOT change any
//     experiment result.  Campaigns stay bit-identical with and without
//     telemetry (guarded by ObserverDoesNotPerturbCampaign in the tests).
//   * on_campaign_start / on_golden_done / on_campaign_end are called once,
//     from the campaign thread, in that order.
//   * on_experiment_done and on_worker_profile are called concurrently from
//     worker threads (worker ids are dense in [0, info.workers)), so
//     implementations must be thread-safe.  Per-experiment work should be
//     O(a few atomic ops) — it sits on the campaign's hot path.
//   * wall_ns is the experiment's wall-clock execution time; it is the only
//     nondeterministic input an observer receives.
#pragma once

#include <cstdint>
#include <vector>

#include "fi/campaign.hpp"
#include "obs/profile.hpp"

namespace earl::obs {

/// Campaign facts resolved by the runner before the first experiment.
struct CampaignStartInfo {
  std::uint64_t fault_space_bits = 0;
  std::uint64_t register_partition_bits = 0;
  std::size_t workers = 1;  // resolved worker count (>= 1)
};

class CampaignObserver {
 public:
  virtual ~CampaignObserver() = default;

  virtual void on_campaign_start(const fi::CampaignConfig& config,
                                 const CampaignStartInfo& info) {
    (void)config;
    (void)info;
  }

  virtual void on_golden_done(const fi::GoldenRun& golden) { (void)golden; }

  /// One call per experiment, from the worker that ran it.
  virtual void on_experiment_done(std::size_t worker,
                                  const fi::ExperimentResult& result,
                                  std::uint64_t wall_ns) {
    (void)worker;
    (void)result;
    (void)wall_ns;
  }

  /// A worker's accumulated execution profile (instruction mix, cache,
  /// EDM trigger counts), reported once when the worker drains the queue.
  /// Worker 0's profile includes the golden run.
  virtual void on_worker_profile(std::size_t worker,
                                 const TargetProfile& profile) {
    (void)worker;
    (void)profile;
  }

  virtual void on_campaign_end(const fi::CampaignResult& result) {
    (void)result;
  }
};

/// Fans every callback out to a list of non-owned children, in add() order.
class MultiObserver final : public CampaignObserver {
 public:
  void add(CampaignObserver* child) {
    if (child != nullptr) children_.push_back(child);
  }
  bool empty() const { return children_.empty(); }

  void on_campaign_start(const fi::CampaignConfig& config,
                         const CampaignStartInfo& info) override {
    for (CampaignObserver* c : children_) c->on_campaign_start(config, info);
  }
  void on_golden_done(const fi::GoldenRun& golden) override {
    for (CampaignObserver* c : children_) c->on_golden_done(golden);
  }
  void on_experiment_done(std::size_t worker,
                          const fi::ExperimentResult& result,
                          std::uint64_t wall_ns) override {
    for (CampaignObserver* c : children_) {
      c->on_experiment_done(worker, result, wall_ns);
    }
  }
  void on_worker_profile(std::size_t worker,
                         const TargetProfile& profile) override {
    for (CampaignObserver* c : children_) c->on_worker_profile(worker, profile);
  }
  void on_campaign_end(const fi::CampaignResult& result) override {
    for (CampaignObserver* c : children_) c->on_campaign_end(result);
  }

 private:
  std::vector<CampaignObserver*> children_;
};

}  // namespace earl::obs
