// Campaign observation interface.
//
// `fi::CampaignRunner::run` drives thousands of deterministic experiments
// across worker threads; a CampaignObserver is how telemetry taps that loop
// without touching its semantics.  The contract:
//
//   * Observation is passive — attaching an observer MUST NOT change any
//     experiment result.  Campaigns stay bit-identical with and without
//     telemetry (guarded by ObserverDoesNotPerturbCampaign in the tests).
//   * on_campaign_start / on_golden_done / on_campaign_end are called once,
//     from the campaign thread, in that order.
//   * on_experiment_done and on_worker_profile are called concurrently from
//     worker threads (worker ids are dense in [0, info.workers)), so
//     implementations must be thread-safe.  Per-experiment work should be
//     O(a few atomic ops) — it sits on the campaign's hot path.
//   * wall_ns is the experiment's wall-clock execution time; it is the only
//     nondeterministic input an observer receives.
#pragma once

#include <cstdint>
#include <vector>

#include "fi/campaign.hpp"
#include "obs/profile.hpp"

namespace earl::obs {

/// Campaign facts resolved by the runner before the first experiment.
struct CampaignStartInfo {
  std::uint64_t fault_space_bits = 0;
  std::uint64_t register_partition_bits = 0;
  std::size_t workers = 1;  // resolved worker count (>= 1)
};

/// `IterationRecord::experiment` value marking golden-run iterations.
inline constexpr std::uint64_t kGoldenExperimentId = ~std::uint64_t{0};

/// One closed-loop iteration, reported in detail mode (GOOFI's detail mode:
/// per-iteration state logging for offline error-propagation analysis).
/// Records are emitted only for output-producing iterations — a detecting
/// iteration's facts live in the experiment record instead — so an
/// experiment emits exactly `end_iteration` records and the golden run
/// emits one per configured iteration.
struct IterationRecord {
  std::uint64_t experiment = 0;  // kGoldenExperimentId for the golden run
  std::uint32_t iteration = 0;   // k
  float reference = 0.0f;        // r(k), reference speed [rad/s]
  float measurement = 0.0f;      // y(k), measured speed fed to the controller
  float output = 0.0f;           // u_lim(k), limited throttle angle [deg]
  float golden_output = 0.0f;    // fault-free u_lim(k) (== output for golden)
  float deviation = 0.0f;        // |output - golden_output|
  float state = 0.0f;            // controller integrator state x
  bool assertion_fired = false;  // executable assertion took its bad path
  bool recovery_fired = false;   // ... and best-effort recovery ran
  std::uint64_t elapsed = 0;     // time units this iteration consumed
};

class CampaignObserver {
 public:
  virtual ~CampaignObserver() = default;

  virtual void on_campaign_start(const fi::CampaignConfig& config,
                                 const CampaignStartInfo& info) {
    (void)config;
    (void)info;
  }

  virtual void on_golden_done(const fi::GoldenRun& golden) { (void)golden; }

  /// One call per experiment, from the worker that ran it.
  virtual void on_experiment_done(std::size_t worker,
                                  const fi::ExperimentResult& result,
                                  std::uint64_t wall_ns) {
    (void)worker;
    (void)result;
    (void)wall_ns;
  }

  /// A worker's accumulated execution profile (instruction mix, cache,
  /// EDM trigger counts), reported once when the worker drains the queue.
  /// Worker 0's profile includes the golden run.
  virtual void on_worker_profile(std::size_t worker,
                                 const TargetProfile& profile) {
    (void)worker;
    (void)profile;
  }

  /// The campaign grew mid-run (control-plane extend): `new_total` is the
  /// new experiment count.  Called from the worker that applied the
  /// extension, strictly before any on_experiment_done for an extended
  /// index; same thread-safety contract as on_experiment_done.
  virtual void on_campaign_extended(std::size_t worker,
                                    std::size_t new_total) {
    (void)worker;
    (void)new_total;
  }

  virtual void on_campaign_end(const fi::CampaignResult& result) {
    (void)result;
  }

  /// Detail-mode opt-in, sampled once by the runner before the golden run.
  /// Returning true switches the targets into detail capture and enables
  /// on_iteration() — a call per output-producing iteration, orders of
  /// magnitude chattier than on_experiment_done, hence opt-in.
  virtual bool wants_iterations() const { return false; }

  /// One call per output-producing iteration, from the worker running the
  /// experiment (worker 0 for the golden run). Same threading contract as
  /// on_experiment_done; all of an experiment's records arrive in iteration
  /// order from one worker, before its on_experiment_done.
  virtual void on_iteration(std::size_t worker,
                            const IterationRecord& record) {
    (void)worker;
    (void)record;
  }
};

/// Fans every callback out to a list of non-owned children, in add() order.
class MultiObserver final : public CampaignObserver {
 public:
  void add(CampaignObserver* child) {
    if (child != nullptr) children_.push_back(child);
  }
  bool empty() const { return children_.empty(); }

  void on_campaign_start(const fi::CampaignConfig& config,
                         const CampaignStartInfo& info) override {
    for (CampaignObserver* c : children_) c->on_campaign_start(config, info);
  }
  void on_golden_done(const fi::GoldenRun& golden) override {
    for (CampaignObserver* c : children_) c->on_golden_done(golden);
  }
  void on_experiment_done(std::size_t worker,
                          const fi::ExperimentResult& result,
                          std::uint64_t wall_ns) override {
    for (CampaignObserver* c : children_) {
      c->on_experiment_done(worker, result, wall_ns);
    }
  }
  void on_worker_profile(std::size_t worker,
                         const TargetProfile& profile) override {
    for (CampaignObserver* c : children_) c->on_worker_profile(worker, profile);
  }
  void on_campaign_extended(std::size_t worker,
                            std::size_t new_total) override {
    for (CampaignObserver* c : children_) {
      c->on_campaign_extended(worker, new_total);
    }
  }
  void on_campaign_end(const fi::CampaignResult& result) override {
    for (CampaignObserver* c : children_) c->on_campaign_end(result);
  }
  bool wants_iterations() const override {
    for (const CampaignObserver* c : children_) {
      if (c->wants_iterations()) return true;
    }
    return false;
  }
  void on_iteration(std::size_t worker,
                    const IterationRecord& record) override {
    for (CampaignObserver* c : children_) c->on_iteration(worker, record);
  }

 private:
  std::vector<CampaignObserver*> children_;
};

}  // namespace earl::obs
