#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>

#include "obs/json.hpp"

namespace earl::obs {

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(new std::atomic<std::uint64_t>[bounds.size() + 1]) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double x) {
  std::size_t bucket = bounds_.size();  // +inf overflow slot
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (x <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  // Total from the bucket snapshot, not count_: concurrent observes can
  // leave the two momentarily inconsistent, and the rank must refer to
  // the same snapshot the scan walks.
  const std::vector<std::uint64_t> counts = this->counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= rank && counts[i] > 0) {
      if (i >= bounds_.size()) {
        // Overflow bucket has no finite upper edge; report the highest
        // finite bound, as histogram_quantile does.
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double fraction =
          (rank - cumulative) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

namespace {

// Rendered label set — `{class="detected",element="r1"}` — used both as
// the member key inside a family and verbatim in the exposition output.
std::string render_labels(const MetricsRegistry::Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += prometheus_name(key) + "=\"" + prometheus_label_escape(value) +
           "\"";
  }
  out += "}";
  return out;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  } else {
    assert(it->second->bounds().size() == bounds.size());
  }
  return *it->second;
}

Counter& MetricsRegistry::labeled_counter(std::string_view family,
                                          const Labels& labels) {
  const std::string key = render_labels(labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  auto family_it = counter_families_.find(family);
  if (family_it == counter_families_.end()) {
    family_it =
        counter_families_.emplace(std::string(family), FamilyMembers<Counter>())
            .first;
  }
  auto it = family_it->second.find(key);
  if (it == family_it->second.end()) {
    it = family_it->second.emplace(key, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::labeled_gauge(std::string_view family,
                                      const Labels& labels) {
  const std::string key = render_labels(labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  auto family_it = gauge_families_.find(family);
  if (family_it == gauge_families_.end()) {
    family_it =
        gauge_families_.emplace(std::string(family), FamilyMembers<Gauge>())
            .first;
  }
  auto it = family_it->second.find(key);
  if (it == family_it->second.end()) {
    it = family_it->second.emplace(key, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

const Counter* MetricsRegistry::find_labeled_counter(
    std::string_view family, const Labels& labels) const {
  const std::string key = render_labels(labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto family_it = counter_families_.find(family);
  if (family_it == counter_families_.end()) return nullptr;
  const auto it = family_it->second.find(key);
  return it == family_it->second.end() ? nullptr : it->second.get();
}

void MetricsRegistry::set_info(std::string_view name, InfoLabels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  infos_[std::string(name)] = std::move(labels);
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counters_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(c->value());
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_number(g->value());
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(h->count()) + ", \"sum\": " + json_number(h->sum()) +
           ", \"buckets\": [";
    const std::vector<std::uint64_t> counts = h->counts();
    const std::vector<double>& bounds = h->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) out += ", ";
      out += "{\"le\": ";
      out += i < bounds.size() ? json_number(bounds[i]) : "\"inf\"";
      out += ", \"count\": " + std::to_string(counts[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";
  // Labeled families appear only once created, keeping the historical
  // byte-exact JSON shape for registries that never use them.
  if (!counter_families_.empty() || !gauge_families_.empty()) {
    out += ",\n  \"labeled\": {";
    first = true;
    for (const auto& [name, members] : counter_families_) {
      for (const auto& [labels, c] : members) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + json_escape(name + labels) + "\": " +
               std::to_string(c->value());
      }
    }
    for (const auto& [name, members] : gauge_families_) {
      for (const auto& [labels, g] : members) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + json_escape(name + labels) + "\": " +
               json_number(g->value());
      }
    }
    out += first ? "}" : "\n  }";
  }
  // Info gauges appear only once set, so registries that never set one
  // keep their historical byte-exact JSON shape.
  if (!infos_.empty()) {
    out += ",\n  \"info\": {";
    first = true;
    for (const auto& [name, labels] : infos_) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"" + json_escape(name) + "\": {";
      bool first_label = true;
      for (const auto& [key, value] : labels) {
        if (!first_label) out += ", ";
        first_label = false;
        out += "\"" + json_escape(key) + "\": \"" + json_escape(value) + "\"";
      }
      out += "}";
    }
    out += first ? "}" : "\n  }";
  }
  out += "\n}\n";
  return out;
}

std::string MetricsRegistry::to_csv() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "kind,name,field,value\n";
  auto csv_quote = [](const std::string& s) {
    // Metric names are slugs, but be defensive about commas/quotes anyway.
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (const char c : s) {
      if (c == '"') quoted += "\"\"";
      else quoted.push_back(c);
    }
    quoted += "\"";
    return quoted;
  };
  for (const auto& [name, c] : counters_) {
    out += "counter," + csv_quote(name) + ",value," +
           std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "gauge," + csv_quote(name) + ",value," + json_number(g->value()) +
           "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "histogram," + csv_quote(name) + ",count," +
           std::to_string(h->count()) + "\n";
    out += "histogram," + csv_quote(name) + ",sum," + json_number(h->sum()) +
           "\n";
    const std::vector<std::uint64_t> counts = h->counts();
    const std::vector<double>& bounds = h->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      out += "histogram," + csv_quote(name) + ",le_" +
             (i < bounds.size() ? json_number(bounds[i]) : "inf") + "," +
             std::to_string(counts[i]) + "\n";
    }
  }
  for (const auto& [name, members] : counter_families_) {
    for (const auto& [labels, c] : members) {
      out += "counter," + csv_quote(name + labels) + ",value," +
             std::to_string(c->value()) + "\n";
    }
  }
  for (const auto& [name, members] : gauge_families_) {
    for (const auto& [labels, g] : members) {
      out += "gauge," + csv_quote(name + labels) + ",value," +
             json_number(g->value()) + "\n";
    }
  }
  for (const auto& [name, labels] : infos_) {
    for (const auto& [key, value] : labels) {
      out += "info," + csv_quote(name) + "," + csv_quote(key) + "," +
             csv_quote(value) + "\n";
    }
  }
  return out;
}

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string prometheus_label_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

std::string prometheus_histogram_block(std::string_view prom,
                                       std::string_view help,
                                       const Histogram& histogram) {
  std::string block =
      "# HELP " + std::string(prom) + " " + std::string(help) + "\n";
  block += "# TYPE " + std::string(prom) + " histogram\n";
  const std::vector<std::uint64_t> counts = histogram.counts();
  const std::vector<double>& bounds = histogram.bounds();
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    block += std::string(prom) + "_bucket{le=\"" +
             (i < bounds.size() ? json_number(bounds[i]) : "+Inf") + "\"} " +
             std::to_string(cumulative) + "\n";
  }
  block += std::string(prom) + "_sum " + json_number(histogram.sum()) + "\n";
  block += std::string(prom) + "_count " + std::to_string(histogram.count()) +
           "\n";
  // Server-side quantile estimates ride along as their own gauge family
  // (exposition rules: a histogram family may only carry _bucket/_sum/
  // _count samples, so the quantiles need a separate TYPE).
  block += "# HELP " + std::string(prom) +
           "_quantile Quantile estimates interpolated from the " +
           std::string(prom) + " buckets.\n";
  block += "# TYPE " + std::string(prom) + "_quantile gauge\n";
  static constexpr struct {
    double q;
    const char* label;
  } kQuantiles[] = {{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}};
  for (const auto& [q, label] : kQuantiles) {
    block += std::string(prom) + "_quantile{quantile=\"" + label + "\"} " +
             json_number(histogram.quantile(q)) + "\n";
  }
  return block;
}

void MetricsRegistry::set_help(std::string_view name, std::string_view help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  help_[std::string(name)] = std::string(help);
}

std::string MetricsRegistry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);

  // Escape rules for HELP text: backslash and newline only.
  auto escape_help = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '\\') out += "\\\\";
      else if (c == '\n') out += "\\n";
      else out.push_back(c);
    }
    return out;
  };
  auto help_for = [&](const std::string& name) {
    const auto it = help_.find(name);
    return escape_help(it == help_.end() ? name : it->second);
  };

  // One self-contained block (# HELP, # TYPE, samples) per instrument,
  // merged across kinds and sorted by exposition name for determinism.
  std::vector<std::pair<std::string, std::string>> blocks;
  for (const auto& [name, c] : counters_) {
    const std::string prom = prometheus_name(name);
    std::string block = "# HELP " + prom + " " + help_for(name) + "\n";
    block += "# TYPE " + prom + " counter\n";
    block += prom + " " + std::to_string(c->value()) + "\n";
    blocks.emplace_back(prom, std::move(block));
  }
  for (const auto& [name, g] : gauges_) {
    const std::string prom = prometheus_name(name);
    std::string block = "# HELP " + prom + " " + help_for(name) + "\n";
    block += "# TYPE " + prom + " gauge\n";
    block += prom + " " + json_number(g->value()) + "\n";
    blocks.emplace_back(prom, std::move(block));
  }
  for (const auto& [name, h] : histograms_) {
    const std::string prom = prometheus_name(name);
    blocks.emplace_back(prom,
                        prometheus_histogram_block(prom, help_for(name), *h));
  }
  for (const auto& [name, members] : counter_families_) {
    const std::string prom = prometheus_name(name);
    std::string block = "# HELP " + prom + " " + help_for(name) + "\n";
    block += "# TYPE " + prom + " counter\n";
    for (const auto& [labels, c] : members) {
      block += prom + labels + " " + std::to_string(c->value()) + "\n";
    }
    blocks.emplace_back(prom, std::move(block));
  }
  for (const auto& [name, members] : gauge_families_) {
    const std::string prom = prometheus_name(name);
    std::string block = "# HELP " + prom + " " + help_for(name) + "\n";
    block += "# TYPE " + prom + " gauge\n";
    for (const auto& [labels, g] : members) {
      block += prom + labels + " " + json_number(g->value()) + "\n";
    }
    blocks.emplace_back(prom, std::move(block));
  }
  for (const auto& [name, labels] : infos_) {
    const std::string prom = prometheus_name(name);
    std::string block = "# HELP " + prom + " " + help_for(name) + "\n";
    block += "# TYPE " + prom + " gauge\n";
    block += prom + "{";
    bool first = true;
    for (const auto& [key, value] : labels) {
      if (!first) block += ",";
      first = false;
      block += prometheus_name(key) + "=\"" + prometheus_label_escape(value) +
               "\"";
    }
    block += "} 1\n";
    blocks.emplace_back(prom, std::move(block));
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::string out;
  for (const auto& [prom, block] : blocks) out += block;
  return out;
}

std::span<const double> detection_latency_bounds() {
  static constexpr double kBounds[] = {1,    2,    5,     10,    20,    50,
                                       100,  200,  500,   1000,  2000,  5000,
                                       10000, 20000, 50000, 100000};
  return kBounds;
}

std::span<const double> latency_ns_bounds() {
  static constexpr double kBounds[] = {
      1e2, 2.5e2, 5e2, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4,
      1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 1e8,   1e9};
  return kBounds;
}

}  // namespace earl::obs
