// Toolchain attribution for telemetry artifacts.
//
// Performance baselines are meaningless without knowing what produced
// them: the same bench run under -O0 or a different compiler is a
// different experiment.  Every bench JSON document embeds this block, and
// campaigns export it as the `earl_build_info` info gauge, so a regression
// table can always answer "same toolchain?" before comparing numbers.
//
// The git revision and build flags are baked in at configure time (see
// src/CMakeLists.txt); the compiler string comes from the compiler itself.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace earl::obs {

struct BuildInfo {
  std::string git;         // `git describe --always --dirty`, or "unknown"
  std::string compiler;    // e.g. "gcc 13.2.0"
  std::string build_type;  // CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo"
  std::string flags;       // CMAKE_CXX_FLAGS (may be empty)

  bool operator==(const BuildInfo&) const = default;
};

/// The build this binary was produced by.
const BuildInfo& current_build_info();

/// Registers the `earl.build_info` info gauge (exported as
/// `earl_build_info{git="...",compiler="...",build_type="..."} 1`).
void register_build_info(MetricsRegistry& registry);

}  // namespace earl::obs
