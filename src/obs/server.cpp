#include "obs/server.hpp"

#include <algorithm>
#include <optional>

#include "fi/coordinator.hpp"
#include "obs/build_info.hpp"
#include "obs/criticality_observer.hpp"
#include "obs/json.hpp"
#include "obs/labels.hpp"

namespace earl::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ProgressReporter::Options silent_progress_options() {
  ProgressReporter::Options options;
  options.sink = nullptr;  // counters only; /progress reads the snapshot
  return options;
}

HttpServer::Options make_http_options(const TelemetryServer::Options& options) {
  HttpServer::Options out;
  out.address = options.address;
  out.port = options.port;
  out.handler_threads = options.handler_threads;
  out.max_request_bytes = options.max_request_bytes;
  return out;
}

}  // namespace

// ---------------------------------------------------------------- watchdog

void WorkerWatchdog::start(std::size_t workers, std::int64_t now_ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  active_ = true;
  max_wall_ns_ = 0;
  last_done_.assign(workers, now_ns);
}

void WorkerWatchdog::set_baseline(std::uint64_t wall_ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  max_wall_ns_ = std::max(max_wall_ns_, wall_ns);
}

void WorkerWatchdog::note_done(std::size_t worker, std::uint64_t wall_ns,
                               std::int64_t now_ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (worker < last_done_.size()) last_done_[worker] = now_ns;
  max_wall_ns_ = std::max(max_wall_ns_, wall_ns);
}

void WorkerWatchdog::touch_all(std::int64_t now_ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::int64_t& last : last_done_) last = now_ns;
}

void WorkerWatchdog::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  active_ = false;
}

bool WorkerWatchdog::active() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

std::size_t WorkerWatchdog::workers() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_done_.size();
}

std::int64_t WorkerWatchdog::threshold_locked() const {
  const double scaled =
      options_.stall_factor * static_cast<double>(max_wall_ns_);
  return std::max(options_.min_threshold_ns,
                  static_cast<std::int64_t>(scaled));
}

std::int64_t WorkerWatchdog::stall_threshold_ns() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return threshold_locked();
}

std::vector<std::size_t> WorkerWatchdog::stalled(std::int64_t now_ns) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::size_t> out;
  if (!active_) return out;
  const std::int64_t threshold = threshold_locked();
  for (std::size_t w = 0; w < last_done_.size(); ++w) {
    if (now_ns - last_done_[w] > threshold) out.push_back(w);
  }
  return out;
}

std::int64_t WorkerWatchdog::last_done_ns(std::size_t worker) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return worker < last_done_.size() ? last_done_[worker] : 0;
}

// -------------------------------------------------------------- event ring

EventRing::EventRing(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)) {}

std::uint64_t EventRing::push(ServerEvent event) {
  std::uint64_t seq;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    seq = next_seq_++;
    event.seq = seq;
    ring_[seq % ring_.size()] = event;
    if (next_seq_ > ring_.size()) ++evicted_;
  }
  cv_.notify_all();
  return seq;
}

EventRing::Poll EventRing::poll(std::uint64_t* cursor,
                                std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, timeout,
               [&] { return closed_ || next_seq_ > *cursor; });
  Poll result;
  result.closed = closed_;
  const std::uint64_t oldest =
      next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0;
  if (*cursor < oldest) {
    result.dropped = oldest - *cursor;
    *cursor = oldest;
  }
  while (*cursor < next_seq_) {
    result.events.push_back(ring_[*cursor % ring_.size()]);
    ++*cursor;
  }
  return result;
}

std::uint64_t EventRing::oldest_seq() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0;
}

std::uint64_t EventRing::evicted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

void EventRing::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

// ---------------------------------------------------------------- SSE text

std::string render_sse_event(const ServerEvent& event,
                             std::string_view campaign) {
  std::string_view name;
  JsonObject data;
  switch (event.type) {
    case ServerEvent::Type::kCampaignStart:
      name = "campaign_start";
      data.field("campaign", campaign);
      data.field("experiments", event.arg0);
      data.field("workers", event.arg1);
      break;
    case ServerEvent::Type::kGoldenDone:
      name = "golden_run";
      data.field("total_time", event.arg0);
      data.field("max_iteration_time", event.arg1);
      break;
    case ServerEvent::Type::kExperiment:
      name = "experiment";
      data.field("id", event.id);
      data.field("worker", static_cast<std::uint64_t>(event.worker));
      data.field("outcome", outcome_slug(event.outcome));
      if (event.outcome == analysis::Outcome::kDetected) {
        data.field("edm", edm_slug(event.edm));
      }
      data.field("end_iteration", event.end_iteration);
      data.field("wall_ns", event.wall_ns);
      break;
    case ServerEvent::Type::kControl:
      name = "control";
      data.field("command", fi::control_command_slug(
                                static_cast<fi::ControlCommand>(event.arg0)));
      data.field("value", event.arg1);
      break;
    case ServerEvent::Type::kExtended:
      name = "campaign_extended";
      data.field("experiments", event.arg0);
      data.field("worker", static_cast<std::uint64_t>(event.worker));
      break;
    case ServerEvent::Type::kCampaignEnd:
      name = "campaign_end";
      data.field("campaign", campaign);
      data.field("completed", event.arg0);
      data.field("interrupted", event.arg1 != 0);
      break;
    case ServerEvent::Type::kCriticality:
      // Fallback frame; serve_events() substitutes the live digest from
      // the attached CriticalityObserver at consume time.
      name = "criticality_updated";
      data.field("experiments", event.arg0);
      break;
  }
  std::string out = "event: ";
  out += name;
  out += "\nid: " + std::to_string(event.seq);
  out += "\ndata: " + std::move(data).str();
  out += "\n\n";
  return out;
}

// ----------------------------------------------------------------- server

TelemetryServer::TelemetryServer(Options options,
                                 const MetricsRegistry* registry)
    : options_(std::move(options)),
      registry_(registry),
      http_(
          [this](const HttpRequest& request, HttpConnection& connection) {
            handle(request, connection);
          },
          make_http_options(options_)),
      watchdog_(options_.watchdog),
      ring_(options_.event_capacity),
      reporter_(silent_progress_options()) {}

TelemetryServer::~TelemetryServer() { stop(); }

bool TelemetryServer::start(std::string* error) {
  return http_.start(error);
}

void TelemetryServer::stop() {
  ring_.close();  // wake SSE handlers so HttpServer::stop can join them
  http_.stop();
}

std::int64_t TelemetryServer::now() const {
  return options_.now_ns ? options_.now_ns() : steady_now_ns();
}

std::string TelemetryServer::campaign_name() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return name_;
}

std::string_view TelemetryServer::state_slug() const {
  switch (state_.load(std::memory_order_relaxed)) {
    case CampaignState::kIdle: return "idle";
    case CampaignState::kRunning:
      // While the campaign runs the controller is the authority:
      // running | paused | draining.
      return controller_ != nullptr ? controller_->state_slug() : "running";
    case CampaignState::kDone: return "done";
  }
  return "idle";
}

void TelemetryServer::set_controller(fi::CampaignController* controller) {
  controller_ = controller;
  if (controller != nullptr) {
    reporter_.set_paused_ns_source(
        [controller] { return controller->paused_ns(); });
  } else {
    reporter_.set_paused_ns_source(nullptr);
  }
}

void TelemetryServer::set_coordinator(fi::CampaignCoordinator* coordinator) {
  coordinator_ = coordinator;
}

void TelemetryServer::set_tracer(SpanTracer* tracer) {
  tracer_ = tracer;
  http_track_ = tracer != nullptr ? tracer->track("http") : nullptr;
}

void TelemetryServer::set_criticality(CriticalityObserver* criticality) {
  criticality_ = criticality;
}

// Observer callbacks — the campaign-facing (hot) side.

void TelemetryServer::on_campaign_start(const fi::CampaignConfig& config,
                                        const CampaignStartInfo& info) {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    name_ = config.name;
  }
  campaign_workers_.store(info.workers, std::memory_order_relaxed);
  campaign_start_ns_.store(now(), std::memory_order_relaxed);
  criticality_seen_.store(0, std::memory_order_relaxed);
  state_.store(CampaignState::kRunning, std::memory_order_relaxed);
  reporter_.on_campaign_start(config, info);

  ServerEvent event;
  event.type = ServerEvent::Type::kCampaignStart;
  event.arg0 = config.experiments;
  event.arg1 = info.workers;
  ring_.push(event);
}

void TelemetryServer::on_golden_done(const fi::GoldenRun& golden) {
  // Workers spawn right after the golden run: arm the watchdog here and
  // seed its longest-experiment estimate with the golden run's own wall
  // time (an experiment never outlasts a full golden-length execution).
  const std::int64_t t = now();
  watchdog_.start(campaign_workers_.load(std::memory_order_relaxed), t);
  const std::int64_t golden_wall =
      t - campaign_start_ns_.load(std::memory_order_relaxed);
  watchdog_.set_baseline(
      golden_wall > 0 ? static_cast<std::uint64_t>(golden_wall) : 0);

  ServerEvent event;
  event.type = ServerEvent::Type::kGoldenDone;
  event.arg0 = golden.total_time;
  event.arg1 = golden.max_iteration_time;
  ring_.push(event);
}

void TelemetryServer::on_experiment_done(std::size_t worker,
                                         const fi::ExperimentResult& result,
                                         std::uint64_t wall_ns) {
  reporter_.on_experiment_done(worker, result, wall_ns);
  watchdog_.note_done(worker, wall_ns, now());

  ServerEvent event;
  event.type = ServerEvent::Type::kExperiment;
  event.id = result.id;
  event.worker = static_cast<std::uint32_t>(worker);
  event.outcome = result.outcome;
  event.edm = result.edm;
  event.end_iteration = result.end_iteration;
  event.wall_ns = wall_ns;
  ring_.push(event);

  if (criticality_ != nullptr && options_.criticality_digest_every > 0) {
    const std::uint64_t seen =
        criticality_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (seen % options_.criticality_digest_every == 0) {
      ServerEvent digest;
      digest.type = ServerEvent::Type::kCriticality;
      digest.arg0 = seen;
      ring_.push(digest);
    }
  }
}

void TelemetryServer::on_campaign_extended(std::size_t worker,
                                           std::size_t new_total) {
  reporter_.on_campaign_extended(worker, new_total);

  ServerEvent event;
  event.type = ServerEvent::Type::kExtended;
  event.worker = static_cast<std::uint32_t>(worker);
  event.arg0 = new_total;
  ring_.push(event);
}

void TelemetryServer::on_campaign_end(const fi::CampaignResult& result) {
  reporter_.on_campaign_end(result);
  watchdog_.finish();
  state_.store(CampaignState::kDone, std::memory_order_relaxed);

  ServerEvent event;
  event.type = ServerEvent::Type::kCampaignEnd;
  event.arg0 = result.experiments.size();
  event.arg1 = result.interrupted ? 1 : 0;
  ring_.push(event);

  // Final digest so subscribers see the completed ranking even when the
  // campaign length is not a multiple of the digest cadence.
  if (criticality_ != nullptr && options_.criticality_digest_every > 0) {
    ServerEvent digest;
    digest.type = ServerEvent::Type::kCriticality;
    digest.arg0 = criticality_seen_.load(std::memory_order_relaxed);
    ring_.push(digest);
  }
}

// HTTP handlers — the scrape-facing (read-only) side.

void TelemetryServer::handle(const HttpRequest& request,
                             HttpConnection& connection) {
  http_requests_.fetch_add(1, std::memory_order_relaxed);
  // One earl_http_request_ns sample per request-response exchange;
  // /events is excluded (the stream lives as long as its subscriber).
  const auto request_start = std::chrono::steady_clock::now();
  const std::int64_t span_begin =
      http_track_ != nullptr ? http_track_->now() : 0;
  const auto observe_latency = [&] {
    http_request_ns_.observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - request_start)
            .count()));
    // The "http" track is shared by all handler threads; SpanTrack::emit
    // is multi-writer safe.
    if (http_track_ != nullptr) {
      http_track_->emit(SpanPhase::kHttpRequest, span_begin,
                        http_track_->now(), kSpanNoArg);
    }
  };
  // Canonicalize: /api/v1/<name> is the canonical surface, the bare
  // legacy paths are aliases answered identically plus a Deprecation
  // header pointing at their successor.
  const std::string raw_path = request.path();
  bool legacy = true;
  std::string path = raw_path;
  if (raw_path == "/api/v1") {
    legacy = false;
    path = "/";
  } else if (raw_path.rfind("/api/v1/", 0) == 0) {
    legacy = false;
    path = raw_path.substr(7);  // keep the leading '/'
  }
  const auto finish = [&](HttpResponse response) {
    if (legacy && path != "/") {
      response.extra_headers.emplace_back("Deprecation", "true");
      response.extra_headers.emplace_back(
          "Link", "</api/v1" + path + ">; rel=\"successor-version\"");
    }
    connection.send_response(response, request.keep_alive());
    observe_latency();
  };
  if (path.rfind("/shard/", 0) == 0) {
    if (legacy) {
      finish(json_error_response(
          404, "not_found",
          "shard endpoints are versioned; use /api/v1" + path));
      return;
    }
    finish(shard_response(request, path));
    return;
  }
  if (path.rfind("/control/", 0) == 0) {
    finish(control_response(request));
    return;
  }
  if (request.method != "GET") {
    finish(json_error_response(
        405, "method_not_allowed",
        "method not allowed: telemetry endpoints are GET-only"));
    return;
  }
  if (path == "/events") {
    serve_events(connection, legacy);
    return;
  }
  if (path == "/version") {
    if (legacy) {
      finish(json_error_response(404, "not_found",
                                 "the version document is versioned; GET "
                                 "/api/v1/version"));
      return;
    }
    finish(version_response());
    return;
  }
  HttpResponse response;
  if (path == "/metrics") {
    response = metrics_response();
  } else if (path == "/progress") {
    response = progress_response();
  } else if (path == "/healthz") {
    response = healthz_response();
  } else if (path == "/spans") {
    response = spans_response();
  } else if (path == "/criticality") {
    response = criticality_response(request);
  } else if (path == "/") {
    response = index_response();
  } else {
    response = json_error_response(
        404, "not_found",
        "not found; endpoints: /metrics /progress /healthz /events "
        "/spans /criticality /api/v1/version "
        "/control/{pause,resume,stop,extend,workers} /api/v1/shard/"
        "{lease,heartbeat,result}");
  }
  finish(std::move(response));
}

namespace {

/// Strict decimal parse for query parameters; nullopt on empty, non-digit,
/// or overflow.  Zero is valid (shard ids and progress counts start at 0).
std::optional<std::uint64_t> parse_nonneg(const std::string& text) {
  if (text.empty() || text.size() > 18) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Strict positive-integer parse for control arguments ("n" query param);
/// additionally rejects zero.
std::optional<std::uint64_t> parse_positive(const std::string& text) {
  const std::optional<std::uint64_t> value = parse_nonneg(text);
  if (value && *value == 0) return std::nullopt;
  return value;
}

}  // namespace

HttpResponse TelemetryServer::control_status(fi::ControlCommand command) {
  JsonObject object;
  object.field("ok", true);
  object.field("command", fi::control_command_slug(command));
  object.field("state", controller_->state_slug());
  object.field("target_experiments",
               static_cast<std::uint64_t>(controller_->target_experiments()));
  object.field("worker_cap",
               static_cast<std::uint64_t>(controller_->worker_cap()));
  object.field("paused_s",
               static_cast<double>(controller_->paused_ns()) / 1e9);
  HttpResponse response;
  response.content_type = "application/json";
  response.body = std::move(object).str() + "\n";
  return response;
}

bool TelemetryServer::authorized(const HttpRequest& request) const {
  if (options_.bearer_token.empty()) return true;
  // Length-independent comparison so the token cannot be guessed
  // byte-by-byte from response timing.
  return constant_time_equal(request.header("Authorization"),
                             "Bearer " + options_.bearer_token);
}

HttpResponse TelemetryServer::control_response(const HttpRequest& request) {
  if (request.method != "POST") {
    return json_error_response(
        405, "method_not_allowed",
        "method not allowed: control endpoints are POST-only");
  }
  if (!authorized(request)) {
    return json_error_response(
        401, "unauthorized",
        "unauthorized: control endpoints require \"Authorization: "
        "Bearer <token>\"");
  }
  if (controller_ == nullptr) {
    return json_error_response(
        503, "unavailable",
        "control plane unavailable: no campaign controller attached");
  }

  std::string command = request.path();
  command = command.substr(command.find("/control/") + 9);
  ServerEvent event;
  event.type = ServerEvent::Type::kControl;
  if (command == "pause") {
    controller_->pause();
    event.arg0 = static_cast<std::uint64_t>(fi::ControlCommand::kPause);
    ring_.push(event);
    return control_status(fi::ControlCommand::kPause);
  }
  if (command == "resume") {
    controller_->resume();
    // A long pause must not read as a stall the instant work resumes.
    watchdog_.touch_all(now());
    event.arg0 = static_cast<std::uint64_t>(fi::ControlCommand::kResume);
    ring_.push(event);
    return control_status(fi::ControlCommand::kResume);
  }
  if (command == "stop") {
    controller_->stop();
    event.arg0 = static_cast<std::uint64_t>(fi::ControlCommand::kStop);
    ring_.push(event);
    return control_status(fi::ControlCommand::kStop);
  }
  if (command == "extend") {
    const std::optional<std::uint64_t> n =
        parse_positive(request.query_param("n"));
    if (!n) {
      return json_error_response(
          400, "bad_request",
          "extend requires a positive integer query parameter, e.g. "
          "POST /control/extend?n=50");
    }
    if (controller_->stop_requested()) {
      return json_error_response(409, "conflict",
                                 "cannot extend: campaign is draining");
    }
    const std::size_t target =
        controller_->extend(static_cast<std::size_t>(*n));
    event.arg0 = static_cast<std::uint64_t>(fi::ControlCommand::kExtend);
    event.arg1 = target;
    ring_.push(event);
    return control_status(fi::ControlCommand::kExtend);
  }
  if (command == "workers") {
    const std::optional<std::uint64_t> n =
        parse_positive(request.query_param("n"));
    if (!n) {
      return json_error_response(
          400, "bad_request",
          "workers requires a positive integer query parameter, e.g. "
          "POST /control/workers?n=2 (raise to or above the campaign's "
          "worker count to uncap)");
    }
    controller_->set_workers(static_cast<std::size_t>(*n));
    // Raising the cap wakes workers whose last activity predates the cap.
    watchdog_.touch_all(now());
    event.arg0 = static_cast<std::uint64_t>(fi::ControlCommand::kWorkers);
    event.arg1 = *n;
    ring_.push(event);
    return control_status(fi::ControlCommand::kWorkers);
  }
  return json_error_response(404, "not_found",
                             "unknown control command; commands: pause "
                             "resume stop extend workers");
}

HttpResponse TelemetryServer::shard_response(const HttpRequest& request,
                                             const std::string& path) {
  if (request.method != "POST") {
    return json_error_response(
        405, "method_not_allowed",
        "method not allowed: shard endpoints are POST-only");
  }
  if (!authorized(request)) {
    return json_error_response(
        401, "unauthorized",
        "unauthorized: shard endpoints require \"Authorization: "
        "Bearer <token>\"");
  }
  if (coordinator_ == nullptr) {
    return json_error_response(
        503, "unavailable",
        "shard plane unavailable: no campaign coordinator attached "
        "(start the server with earl-goofi --coordinate N)");
  }
  const std::string command = path.substr(7);  // after /shard/
  if (command == "lease") {
    const fi::CampaignCoordinator::Lease lease =
        coordinator_->lease(request.query_param("worker"));
    JsonObject object;
    switch (lease.status) {
      case fi::CampaignCoordinator::Lease::Status::kComplete:
        object.field("status", "complete");
        break;
      case fi::CampaignCoordinator::Lease::Status::kWait:
        object.field("status", "wait");
        object.field("retry_ms", std::uint64_t{500});
        break;
      case fi::CampaignCoordinator::Lease::Status::kGranted:
        object.field("status", "granted");
        object.field("shard", static_cast<std::uint64_t>(lease.shard));
        object.field("first", static_cast<std::uint64_t>(lease.first));
        object.field("count", static_cast<std::uint64_t>(lease.count));
        object.field("token", lease.token);
        object.field("lease_s",
                     static_cast<double>(coordinator_->lease_timeout_ns()) /
                         1e9);
        object.field("heartbeat_s", coordinator_->heartbeat_s());
        object.raw_field("campaign", coordinator_->spec().to_json());
        break;
    }
    return {200, "application/json", std::move(object).str() + "\n"};
  }
  if (command == "heartbeat") {
    const std::optional<std::uint64_t> shard =
        parse_nonneg(request.query_param("shard"));
    const std::optional<std::uint64_t> token =
        parse_nonneg(request.query_param("token"));
    const std::optional<std::uint64_t> completed =
        parse_nonneg(request.query_param("completed"));
    if (!shard || !token) {
      return json_error_response(
          400, "bad_request",
          "heartbeat requires shard= and token= query parameters");
    }
    const fi::CampaignCoordinator::HeartbeatReply reply =
        coordinator_->heartbeat(static_cast<std::size_t>(*shard), *token,
                                completed.value_or(0));
    if (!reply.known) {
      return json_error_response(
          404, "not_found",
          "unknown shard " + request.query_param("shard"));
    }
    JsonObject object;
    object.field("ok", reply.ok);
    object.field("state", reply.state);
    return {200, "application/json", std::move(object).str() + "\n"};
  }
  if (command == "result") {
    const std::optional<std::uint64_t> shard =
        parse_nonneg(request.query_param("shard"));
    const std::optional<std::uint64_t> token =
        parse_nonneg(request.query_param("token"));
    if (!shard || !token) {
      return json_error_response(
          400, "bad_request",
          "result requires shard= and token= query parameters");
    }
    const fi::CampaignCoordinator::SubmitReply reply = coordinator_->submit(
        static_cast<std::size_t>(*shard), *token, request.body);
    if (!reply.error.empty()) {
      return json_error_response(400, "rejected", reply.error);
    }
    JsonObject object;
    object.field("accepted", reply.accepted);
    object.field("duplicate", reply.duplicate);
    object.field("remaining", static_cast<std::uint64_t>(reply.remaining));
    object.field("complete", reply.complete);
    return {200, "application/json", std::move(object).str() + "\n"};
  }
  return json_error_response(
      404, "not_found",
      "unknown shard command; commands: lease heartbeat result");
}

HttpResponse TelemetryServer::version_response() {
  const BuildInfo& info = current_build_info();
  JsonObject build;
  build.field("git", info.git);
  build.field("compiler", info.compiler);
  build.field("build_type", info.build_type);

  std::string capabilities = "[\"telemetry\",\"events\"";
  if (controller_ != nullptr) capabilities += ",\"control\"";
  if (tracer_ != nullptr) capabilities += ",\"spans\"";
  if (criticality_ != nullptr || coordinator_ != nullptr) {
    capabilities += ",\"criticality\"";
  }
  if (coordinator_ != nullptr) capabilities += ",\"coordinator\"";
  capabilities += "]";

  JsonObject object;
  object.field("schema", "earl.api.v1");
  object.field("api_version", std::uint64_t{1});
  object.field("shard_protocol", std::uint64_t{1});
  object.raw_field("build", std::move(build).str());
  object.raw_field("capabilities", capabilities);
  object.raw_field(
      "endpoints",
      "[\"/api/v1/version\",\"/api/v1/metrics\",\"/api/v1/progress\","
      "\"/api/v1/healthz\",\"/api/v1/events\",\"/api/v1/spans\","
      "\"/api/v1/criticality\",\"/api/v1/control/{pause,resume,stop,"
      "extend,workers}\",\"/api/v1/shard/{lease,heartbeat,result}\"]");
  return {200, "application/json", std::move(object).str() + "\n"};
}

std::string TelemetryServer::serve_metrics_text() {
  const std::int64_t t = now();
  const std::int64_t start =
      campaign_start_ns_.load(std::memory_order_relaxed);
  std::string out;

  out += "# HELP earl_serve_http_requests_total HTTP requests handled by "
         "the telemetry server.\n";
  out += "# TYPE earl_serve_http_requests_total counter\n";
  out += "earl_serve_http_requests_total " +
         std::to_string(http_requests_.load(std::memory_order_relaxed)) +
         "\n";

  out += "# HELP earl_serve_sse_clients Connected /events subscribers.\n";
  out += "# TYPE earl_serve_sse_clients gauge\n";
  out += "earl_serve_sse_clients " +
         std::to_string(sse_clients_.load(std::memory_order_relaxed)) + "\n";

  out += "# HELP earl_serve_sse_evicted_total Lifecycle events evicted "
         "from the bounded ring buffer (slow consumers miss these).\n";
  out += "# TYPE earl_serve_sse_evicted_total counter\n";
  out += "earl_serve_sse_evicted_total " + std::to_string(ring_.evicted()) +
         "\n";

  out += prometheus_histogram_block(
      "earl_http_request_ns",
      "Telemetry request handling latency in nanoseconds (SSE /events "
      "streams excluded).",
      http_request_ns_);

  out += "# HELP earl_serve_campaign_info Campaign identity; the value is "
         "always 1.\n";
  out += "# TYPE earl_serve_campaign_info gauge\n";
  out += "earl_serve_campaign_info{campaign=\"" +
         prometheus_label_escape(campaign_name()) + "\",state=\"" +
         std::string(state_slug()) + "\"} 1\n";

  out += "# HELP earl_serve_watchdog_stall_threshold_seconds Worker "
         "silence beyond this duration counts as a stall.\n";
  out += "# TYPE earl_serve_watchdog_stall_threshold_seconds gauge\n";
  out += "earl_serve_watchdog_stall_threshold_seconds " +
         json_number(static_cast<double>(watchdog_.stall_threshold_ns()) /
                     1e9) +
         "\n";

  if (controller_ != nullptr) {
    const fi::CampaignController::State state = controller_->state();
    out += "# HELP earl_campaign_state Campaign control state (one-hot: "
           "running/paused/draining).\n";
    out += "# TYPE earl_campaign_state gauge\n";
    const struct {
      fi::CampaignController::State state;
      const char* slug;
    } kStates[] = {
        {fi::CampaignController::State::kRunning, "running"},
        {fi::CampaignController::State::kPaused, "paused"},
        {fi::CampaignController::State::kDraining, "draining"},
    };
    for (const auto& s : kStates) {
      out += "earl_campaign_state{state=\"" + std::string(s.slug) + "\"} " +
             (state == s.state ? "1" : "0") + "\n";
    }

    out += "# HELP earl_control_commands_total Control commands accepted, "
           "by command.\n";
    out += "# TYPE earl_control_commands_total counter\n";
    for (std::size_t c = 0; c < fi::kControlCommandCount; ++c) {
      const auto command = static_cast<fi::ControlCommand>(c);
      out += "earl_control_commands_total{command=\"" +
             std::string(fi::control_command_slug(command)) + "\"} " +
             std::to_string(controller_->command_count(command)) + "\n";
    }

    out += "# HELP earl_control_paused_seconds_total Cumulative wall time "
           "the campaign spent paused.\n";
    out += "# TYPE earl_control_paused_seconds_total counter\n";
    out += "earl_control_paused_seconds_total " +
           json_number(static_cast<double>(controller_->paused_ns()) / 1e9) +
           "\n";

    out += "# HELP earl_control_target_experiments Experiment target "
           "including live extensions.\n";
    out += "# TYPE earl_control_target_experiments gauge\n";
    out += "earl_control_target_experiments " +
           std::to_string(controller_->target_experiments()) + "\n";

    out += "# HELP earl_control_worker_cap Soft cap on active workers "
           "(0 = uncapped).\n";
    out += "# TYPE earl_control_worker_cap gauge\n";
    out += "earl_control_worker_cap " +
           std::to_string(controller_->worker_cap()) + "\n";
  }

  const std::size_t workers = watchdog_.workers();
  if (workers > 0) {
    const std::vector<std::size_t> stalled = current_stalled(t);
    out += "# HELP earl_serve_worker_last_done_seconds Seconds since "
           "campaign start at each worker's last completed experiment.\n";
    out += "# TYPE earl_serve_worker_last_done_seconds gauge\n";
    for (std::size_t w = 0; w < workers; ++w) {
      out += "earl_serve_worker_last_done_seconds{worker=\"" +
             std::to_string(w) + "\"} " +
             json_number(
                 static_cast<double>(watchdog_.last_done_ns(w) - start) /
                 1e9) +
             "\n";
    }
    out += "# HELP earl_serve_worker_stalled Whether the watchdog "
           "currently considers the worker stalled (1 = stalled).\n";
    out += "# TYPE earl_serve_worker_stalled gauge\n";
    for (std::size_t w = 0; w < workers; ++w) {
      const bool is_stalled =
          std::find(stalled.begin(), stalled.end(), w) != stalled.end();
      out += "earl_serve_worker_stalled{worker=\"" + std::to_string(w) +
             "\"} " + (is_stalled ? "1" : "0") + "\n";
    }
  }
  return out;
}

HttpResponse TelemetryServer::metrics_response() {
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  if (registry_ != nullptr) response.body = registry_->to_prometheus();
  response.body += serve_metrics_text();
  if (coordinator_ != nullptr) response.body += coordinator_->metrics_text();
  return response;
}

HttpResponse TelemetryServer::progress_response() {
  if (coordinator_ != nullptr) {
    // Coordinated runs report fleet-wide shard/experiment totals, not the
    // (idle) local campaign counters.
    return {200, "application/json", coordinator_->progress_json()};
  }
  ProgressSnapshot snapshot = reporter_.snapshot();
  if (controller_ != nullptr) {
    // An accepted extension shows up in the target immediately, even
    // though the runner applies it lazily at the next claim.
    snapshot.total = std::max(snapshot.total,
                              controller_->target_experiments());
  }
  JsonObject object;
  object.field("campaign", campaign_name());
  object.field("state", state_slug());
  object.raw_field("progress", render_progress_json(snapshot));
  HttpResponse response;
  response.content_type = "application/json";
  response.body = std::move(object).str() + "\n";
  return response;
}

std::vector<std::size_t> TelemetryServer::current_stalled(
    std::int64_t now_ns) const {
  std::vector<std::size_t> stalled = watchdog_.stalled(now_ns);
  if (controller_ == nullptr || stalled.empty()) return stalled;
  // Paused workers are parked on purpose; so are workers above the cap.
  if (controller_->state() == fi::CampaignController::State::kPaused) {
    return {};
  }
  const std::size_t cap = controller_->worker_cap();
  if (cap > 0) {
    stalled.erase(std::remove_if(stalled.begin(), stalled.end(),
                                 [cap](std::size_t w) { return w >= cap; }),
                  stalled.end());
  }
  return stalled;
}

HttpResponse TelemetryServer::healthz_response() {
  const std::vector<std::size_t> stalled = current_stalled(now());
  const bool unhealthy =
      state_.load(std::memory_order_relaxed) == CampaignState::kRunning &&
      !stalled.empty();
  std::string stalled_json = "[";
  for (std::size_t i = 0; i < stalled.size(); ++i) {
    if (i) stalled_json += ",";
    stalled_json += std::to_string(stalled[i]);
  }
  stalled_json += "]";

  JsonObject object;
  object.field("status", unhealthy ? "stalled" : "ok");
  object.field("state", state_slug());
  object.field("workers", static_cast<std::uint64_t>(watchdog_.workers()));
  object.raw_field("stalled_workers", stalled_json);
  object.field("stall_threshold_s",
               static_cast<double>(watchdog_.stall_threshold_ns()) / 1e9);
  HttpResponse response;
  response.status = unhealthy ? 503 : 200;
  response.content_type = "application/json";
  response.body = std::move(object).str() + "\n";
  return response;
}

HttpResponse TelemetryServer::spans_response() {
  if (tracer_ == nullptr) {
    return json_error_response(404, "not_found",
                               "span tracing is not enabled; run earl-goofi "
                               "with --spans-out FILE");
  }
  HttpResponse response;
  response.content_type = "application/json";
  response.body = render_chrome_trace(*tracer_);
  return response;
}

HttpResponse TelemetryServer::criticality_response(
    const HttpRequest& request) {
  if (criticality_ == nullptr && coordinator_ == nullptr) {
    return json_error_response(404, "not_found",
                               "criticality tracking is not enabled; run "
                               "earl-goofi with --serve");
  }
  const std::string element = request.query_param("element");
  if (!element.empty()) {
    std::string body = coordinator_ != nullptr
                           ? coordinator_->criticality_element_json(element)
                           : criticality_->element_json(element);
    if (body.empty()) {
      return json_error_response(
          404, "not_found",
          "unknown element \"" + element +
              "\"; GET /criticality lists the ranked elements");
    }
    return {200, "application/json", std::move(body)};
  }
  std::size_t top = analysis::kDefaultCriticalityTop;
  if (const std::string top_param = request.query_param("top");
      !top_param.empty()) {
    const std::optional<std::uint64_t> parsed = parse_positive(top_param);
    if (!parsed) {
      return json_error_response(400, "bad_request",
                                 "top must be a positive integer, e.g. GET "
                                 "/criticality?top=10");
    }
    top = static_cast<std::size_t>(*parsed);
  }
  if (coordinator_ != nullptr) {
    return {200, "application/json", coordinator_->criticality_json(top)};
  }
  return {200, "application/json", criticality_->report_json(top)};
}

HttpResponse TelemetryServer::index_response() {
  HttpResponse response;
  response.body =
      "earl telemetry server (canonical surface: /api/v1/...)\n"
      "  /metrics   Prometheus text exposition (live)\n"
      "  /progress  JSON progress snapshot (done/total, rate, ETA)\n"
      "  /healthz   200 healthy / 503 worker stalled\n"
      "  /events    Server-Sent Events lifecycle stream\n"
      "  /spans     Chrome trace_event JSON span window (--spans-out)\n"
      "  /criticality  JSON fault-criticality ranking "
      "(?element=NAME, ?top=K)\n"
      "  /api/v1/version  API + shard protocol versions, capabilities\n"
      "  POST /control/{pause,resume,stop}  campaign control\n"
      "  POST /control/extend?n=M           grow the campaign\n"
      "  POST /control/workers?n=K          soft-cap active workers\n"
      "  POST /api/v1/shard/{lease,heartbeat,result}  distributed "
      "campaign RPCs (--coordinate)\n";
  return response;
}

void TelemetryServer::serve_events(HttpConnection& connection, bool legacy) {
  std::vector<std::pair<std::string, std::string>> extra_headers;
  if (legacy) {
    extra_headers.emplace_back("Deprecation", "true");
    extra_headers.emplace_back("Link",
                               "</api/v1/events>; rel=\"successor-version\"");
  }
  if (!connection.begin_stream("text/event-stream", extra_headers)) return;
  sse_clients_.fetch_add(1, std::memory_order_relaxed);

  // New subscribers catch up on whatever history the ring still holds.
  std::uint64_t cursor = ring_.oldest_seq();
  // Heartbeat cadence in units of the 250 ms poll tick; sub-tick intervals
  // degrade to one comment per tick.
  constexpr std::chrono::milliseconds kPollTick{250};
  const long heartbeat_polls = std::max<long>(
      1, options_.heartbeat_interval / kPollTick);
  long idle_polls = 0;
  bool open = connection.write_all("retry: 1000\n\n");
  while (open && http_.running()) {
    EventRing::Poll poll = ring_.poll(&cursor, kPollTick);
    if (poll.dropped > 0) {
      open = connection.write_all(
          "event: dropped\ndata: {\"dropped\":" +
          std::to_string(poll.dropped) + "}\n\n");
      if (!open) break;
    }
    for (const ServerEvent& event : poll.events) {
      // campaign_start may carry a newer name than the one captured at
      // connect time; re-read so multi-campaign processes stay accurate.
      // Criticality digests render from the live observer here on the
      // consumer thread, keeping the worker-side push a plain POD copy.
      std::string frame;
      if (event.type == ServerEvent::Type::kCriticality &&
          criticality_ != nullptr) {
        frame = "event: criticality_updated\nid: " +
                std::to_string(event.seq) +
                "\ndata: " + criticality_->digest_json() + "\n\n";
      } else {
        frame = render_sse_event(event, campaign_name());
      }
      open = connection.write_all(frame);
      if (!open) break;
    }
    if (poll.closed && poll.events.empty()) break;
    if (poll.events.empty()) {
      // Periodic comment keeps proxies from timing the stream out and
      // detects silently-gone clients (15 s default, configurable).
      if (++idle_polls >= heartbeat_polls) {
        idle_polls = 0;
        open = connection.write_all(": heartbeat\n\n");
      }
    } else {
      idle_polls = 0;
    }
  }
  sse_clients_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace earl::obs
