#include "obs/progress.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace earl::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double progress_rate(std::size_t done, double elapsed_s) {
  return elapsed_s > 0.0 ? static_cast<double>(done) / elapsed_s : 0.0;
}

double progress_eta_seconds(std::size_t done, std::size_t total,
                            double elapsed_s) {
  const double rate = progress_rate(done, elapsed_s);
  const std::size_t remaining = total > done ? total - done : 0;
  return rate > 0.0 ? static_cast<double>(remaining) / rate : 0.0;
}

std::string render_progress_line(const ProgressSnapshot& snapshot,
                                 bool final_line, bool carriage_return) {
  const double rate = progress_rate(snapshot.done, snapshot.elapsed_s);
  const double eta_s =
      progress_eta_seconds(snapshot.done, snapshot.total, snapshot.elapsed_s);
  const double percent =
      snapshot.total > 0 ? 100.0 * static_cast<double>(snapshot.done) /
                               static_cast<double>(snapshot.total)
                         : 100.0;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s%zu/%zu (%5.1f%%)  %8.1f exp/s  ETA %6.1fs  "
                "det %llu  sev %llu  min %llu  benign %llu%s",
                carriage_return ? "\r" : "", snapshot.done, snapshot.total,
                percent, rate, final_line ? 0.0 : eta_s,
                static_cast<unsigned long long>(snapshot.detected),
                static_cast<unsigned long long>(snapshot.severe),
                static_cast<unsigned long long>(snapshot.minor),
                static_cast<unsigned long long>(snapshot.benign),
                carriage_return && !final_line ? "" : "\n");
  return buf;
}

std::string render_progress_json(const ProgressSnapshot& snapshot) {
  JsonObject object;
  object.field("done", static_cast<std::uint64_t>(snapshot.done));
  object.field("total", static_cast<std::uint64_t>(snapshot.total));
  object.field("percent",
               snapshot.total > 0
                   ? 100.0 * static_cast<double>(snapshot.done) /
                         static_cast<double>(snapshot.total)
                   : 0.0);
  object.field("elapsed_s", std::max(0.0, snapshot.elapsed_s));
  object.field("paused_s", std::max(0.0, snapshot.paused_s));
  object.field("rate", progress_rate(snapshot.done, snapshot.elapsed_s));
  object.field("eta_s", progress_eta_seconds(snapshot.done, snapshot.total,
                                             snapshot.elapsed_s));
  object.field("detected", snapshot.detected);
  object.field("severe", snapshot.severe);
  object.field("minor", snapshot.minor);
  object.field("benign", snapshot.benign);
  return std::move(object).str();
}

ProgressReporter::ProgressReporter() : ProgressReporter(Options{}) {}

ProgressReporter::ProgressReporter(Options options) : options_(options) {}

void ProgressReporter::on_campaign_start(const fi::CampaignConfig& config,
                                         const CampaignStartInfo& info) {
  (void)info;
  total_.store(config.experiments, std::memory_order_relaxed);
  end_ns_.store(0, std::memory_order_relaxed);
  start_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  last_print_ns_.store(0, std::memory_order_relaxed);
  for (auto& tally : tallies_) tally.store(0, std::memory_order_relaxed);
  started_.store(true, std::memory_order_release);
}

void ProgressReporter::on_experiment_done(std::size_t worker,
                                          const fi::ExperimentResult& result,
                                          std::uint64_t wall_ns) {
  (void)worker;
  (void)wall_ns;
  tallies_[static_cast<std::size_t>(result.outcome)].fetch_add(
      1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);

  if (options_.sink == nullptr) return;
  const std::int64_t elapsed =
      steady_now_ns() - start_ns_.load(std::memory_order_relaxed);
  if (try_claim_print(elapsed)) print_line(false);
}

bool ProgressReporter::try_claim_print(std::int64_t now_ns) {
  const std::int64_t interval_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.min_interval)
          .count();
  std::int64_t last = last_print_ns_.load(std::memory_order_relaxed);
  if (now_ns - last < interval_ns) return false;
  // One worker wins the right to print this tick; the rest carry on.
  return last_print_ns_.compare_exchange_strong(last, now_ns,
                                                std::memory_order_relaxed);
}

ProgressSnapshot ProgressReporter::snapshot(double elapsed_s) const {
  auto tally = [&](analysis::Outcome o) {
    return tallies_[static_cast<std::size_t>(o)].load(
        std::memory_order_relaxed);
  };
  ProgressSnapshot snapshot;
  snapshot.done = completed_.load(std::memory_order_relaxed);
  snapshot.total = total_.load(std::memory_order_relaxed);
  snapshot.elapsed_s = elapsed_s;
  snapshot.detected = tally(analysis::Outcome::kDetected);
  snapshot.severe = tally(analysis::Outcome::kSeverePermanent) +
                    tally(analysis::Outcome::kSevereSemiPermanent);
  snapshot.minor = tally(analysis::Outcome::kMinorTransient) +
                   tally(analysis::Outcome::kMinorInsignificant);
  snapshot.benign = tally(analysis::Outcome::kLatent) +
                    tally(analysis::Outcome::kOverwritten);
  return snapshot;
}

ProgressSnapshot ProgressReporter::snapshot() const {
  if (!started_.load(std::memory_order_acquire)) return ProgressSnapshot{};
  const std::int64_t end = end_ns_.load(std::memory_order_relaxed);
  const std::int64_t now = end != 0 ? end : steady_now_ns();
  std::int64_t elapsed = now - start_ns_.load(std::memory_order_relaxed);
  std::uint64_t paused = paused_ns_source_ ? paused_ns_source_() : 0;
  if (elapsed < 0) elapsed = 0;
  // Active time is wall time minus paused time; clamp so a pause spanning
  // the whole campaign cannot drive elapsed (and hence rate/ETA) negative.
  if (paused > static_cast<std::uint64_t>(elapsed)) {
    paused = static_cast<std::uint64_t>(elapsed);
  }
  ProgressSnapshot result = snapshot(
      static_cast<double>(elapsed - static_cast<std::int64_t>(paused)) / 1e9);
  result.paused_s = static_cast<double>(paused) / 1e9;
  return result;
}

void ProgressReporter::on_campaign_extended(std::size_t worker,
                                            std::size_t new_total) {
  (void)worker;
  // Monotonic: extensions only ever grow the campaign.
  std::size_t current = total_.load(std::memory_order_relaxed);
  while (current < new_total &&
         !total_.compare_exchange_weak(current, new_total,
                                       std::memory_order_relaxed)) {
  }
}

void ProgressReporter::on_campaign_end(const fi::CampaignResult& result) {
  (void)result;
  end_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  print_line(true);
}

void ProgressReporter::print_line(bool final_line) {
  if (options_.sink == nullptr) return;
  const std::string line =
      render_progress_line(snapshot(), final_line, options_.carriage_return);
  std::fputs(line.c_str(), options_.sink);
  std::fflush(options_.sink);
}

}  // namespace earl::obs
