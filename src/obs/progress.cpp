#include "obs/progress.hpp"

namespace earl::obs {

namespace {

std::int64_t now_ns(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

double progress_rate(std::size_t done, double elapsed_s) {
  return elapsed_s > 0.0 ? static_cast<double>(done) / elapsed_s : 0.0;
}

double progress_eta_seconds(std::size_t done, std::size_t total,
                            double elapsed_s) {
  const double rate = progress_rate(done, elapsed_s);
  const std::size_t remaining = total > done ? total - done : 0;
  return rate > 0.0 ? static_cast<double>(remaining) / rate : 0.0;
}

std::string render_progress_line(const ProgressSnapshot& snapshot,
                                 bool final_line, bool carriage_return) {
  const double rate = progress_rate(snapshot.done, snapshot.elapsed_s);
  const double eta_s =
      progress_eta_seconds(snapshot.done, snapshot.total, snapshot.elapsed_s);
  const double percent =
      snapshot.total > 0 ? 100.0 * static_cast<double>(snapshot.done) /
                               static_cast<double>(snapshot.total)
                         : 100.0;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s%zu/%zu (%5.1f%%)  %8.1f exp/s  ETA %6.1fs  "
                "det %llu  sev %llu  min %llu  benign %llu%s",
                carriage_return ? "\r" : "", snapshot.done, snapshot.total,
                percent, rate, final_line ? 0.0 : eta_s,
                static_cast<unsigned long long>(snapshot.detected),
                static_cast<unsigned long long>(snapshot.severe),
                static_cast<unsigned long long>(snapshot.minor),
                static_cast<unsigned long long>(snapshot.benign),
                carriage_return && !final_line ? "" : "\n");
  return buf;
}

ProgressReporter::ProgressReporter() : ProgressReporter(Options{}) {}

ProgressReporter::ProgressReporter(Options options) : options_(options) {}

void ProgressReporter::on_campaign_start(const fi::CampaignConfig& config,
                                         const CampaignStartInfo& info) {
  (void)info;
  total_ = config.experiments;
  start_ = std::chrono::steady_clock::now();
  completed_.store(0, std::memory_order_relaxed);
  last_print_ns_.store(0, std::memory_order_relaxed);
  for (auto& tally : tallies_) tally.store(0, std::memory_order_relaxed);
}

void ProgressReporter::on_experiment_done(std::size_t worker,
                                          const fi::ExperimentResult& result,
                                          std::uint64_t wall_ns) {
  (void)worker;
  (void)wall_ns;
  tallies_[static_cast<std::size_t>(result.outcome)].fetch_add(
      1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);

  if (try_claim_print(now_ns(start_))) print_line(false);
}

bool ProgressReporter::try_claim_print(std::int64_t now_ns) {
  const std::int64_t interval_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.min_interval)
          .count();
  std::int64_t last = last_print_ns_.load(std::memory_order_relaxed);
  if (now_ns - last < interval_ns) return false;
  // One worker wins the right to print this tick; the rest carry on.
  return last_print_ns_.compare_exchange_strong(last, now_ns,
                                                std::memory_order_relaxed);
}

ProgressSnapshot ProgressReporter::snapshot(double elapsed_s) const {
  auto tally = [&](analysis::Outcome o) {
    return tallies_[static_cast<std::size_t>(o)].load(
        std::memory_order_relaxed);
  };
  ProgressSnapshot snapshot;
  snapshot.done = completed_.load(std::memory_order_relaxed);
  snapshot.total = total_;
  snapshot.elapsed_s = elapsed_s;
  snapshot.detected = tally(analysis::Outcome::kDetected);
  snapshot.severe = tally(analysis::Outcome::kSeverePermanent) +
                    tally(analysis::Outcome::kSevereSemiPermanent);
  snapshot.minor = tally(analysis::Outcome::kMinorTransient) +
                   tally(analysis::Outcome::kMinorInsignificant);
  snapshot.benign = tally(analysis::Outcome::kLatent) +
                    tally(analysis::Outcome::kOverwritten);
  return snapshot;
}

void ProgressReporter::on_campaign_end(const fi::CampaignResult& result) {
  (void)result;
  print_line(true);
}

void ProgressReporter::print_line(bool final_line) {
  const std::string line =
      render_progress_line(snapshot(static_cast<double>(now_ns(start_)) / 1e9),
                           final_line, options_.carriage_return);
  std::fputs(line.c_str(), options_.sink);
  std::fflush(options_.sink);
}

}  // namespace earl::obs
