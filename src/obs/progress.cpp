#include "obs/progress.hpp"

namespace earl::obs {

namespace {

std::int64_t now_ns(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

ProgressReporter::ProgressReporter() : ProgressReporter(Options{}) {}

ProgressReporter::ProgressReporter(Options options) : options_(options) {}

void ProgressReporter::on_campaign_start(const fi::CampaignConfig& config,
                                         const CampaignStartInfo& info) {
  (void)info;
  total_ = config.experiments;
  start_ = std::chrono::steady_clock::now();
  completed_.store(0, std::memory_order_relaxed);
  last_print_ns_.store(0, std::memory_order_relaxed);
  for (auto& tally : tallies_) tally.store(0, std::memory_order_relaxed);
}

void ProgressReporter::on_experiment_done(std::size_t worker,
                                          const fi::ExperimentResult& result,
                                          std::uint64_t wall_ns) {
  (void)worker;
  (void)wall_ns;
  tallies_[static_cast<std::size_t>(result.outcome)].fetch_add(
      1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);

  const std::int64_t interval_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.min_interval)
          .count();
  const std::int64_t now = now_ns(start_);
  std::int64_t last = last_print_ns_.load(std::memory_order_relaxed);
  if (now - last < interval_ns) return;
  // One worker wins the right to print this tick; the rest carry on.
  if (!last_print_ns_.compare_exchange_strong(last, now,
                                              std::memory_order_relaxed)) {
    return;
  }
  print_line(false);
}

void ProgressReporter::on_campaign_end(const fi::CampaignResult& result) {
  (void)result;
  print_line(true);
}

void ProgressReporter::print_line(bool final_line) {
  const std::size_t done = completed_.load(std::memory_order_relaxed);
  const double elapsed_s =
      static_cast<double>(now_ns(start_)) / 1e9;
  const double rate = elapsed_s > 0.0 ? static_cast<double>(done) / elapsed_s
                                      : 0.0;
  const std::size_t remaining = total_ > done ? total_ - done : 0;
  const double eta_s = rate > 0.0 ? static_cast<double>(remaining) / rate
                                  : 0.0;
  const double percent =
      total_ > 0 ? 100.0 * static_cast<double>(done) /
                       static_cast<double>(total_)
                 : 100.0;

  auto tally = [&](analysis::Outcome o) {
    return tallies_[static_cast<std::size_t>(o)].load(
        std::memory_order_relaxed);
  };
  const std::uint64_t detected = tally(analysis::Outcome::kDetected);
  const std::uint64_t severe = tally(analysis::Outcome::kSeverePermanent) +
                               tally(analysis::Outcome::kSevereSemiPermanent);
  const std::uint64_t minor = tally(analysis::Outcome::kMinorTransient) +
                              tally(analysis::Outcome::kMinorInsignificant);
  const std::uint64_t benign = tally(analysis::Outcome::kLatent) +
                               tally(analysis::Outcome::kOverwritten);

  std::fprintf(options_.sink,
               "%s%zu/%zu (%5.1f%%)  %8.1f exp/s  ETA %6.1fs  "
               "det %llu  sev %llu  min %llu  benign %llu%s",
               options_.carriage_return ? "\r" : "", done, total_, percent,
               rate, final_line ? 0.0 : eta_s,
               static_cast<unsigned long long>(detected),
               static_cast<unsigned long long>(severe),
               static_cast<unsigned long long>(minor),
               static_cast<unsigned long long>(benign),
               options_.carriage_return && !final_line ? "" : "\n");
  std::fflush(options_.sink);
}

}  // namespace earl::obs
