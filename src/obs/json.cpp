#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace earl::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest decimal that parses back to exactly `v` (so recorded doubles —
  // e.g. max_deviation in the event log — survive an offline read bit-exact).
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc() ? std::string(buf, end) : "0";
}

void JsonObject::begin_field(std::string_view key) {
  if (!first_) out_.push_back(',');
  first_ = false;
  out_.push_back('"');
  out_.append(key);
  out_ += "\":";
}

JsonObject& JsonObject::field(std::string_view key, std::string_view value) {
  begin_field(key);
  out_.push_back('"');
  out_ += json_escape(value);
  out_.push_back('"');
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, std::uint64_t value) {
  begin_field(key);
  out_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, double value) {
  begin_field(key);
  out_ += json_number(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, bool value) {
  begin_field(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::raw_field(std::string_view key, std::string_view raw) {
  begin_field(key);
  out_.append(raw);
  return *this;
}

std::string JsonObject::str() && {
  out_.push_back('}');
  return std::move(out_);
}

}  // namespace earl::obs
