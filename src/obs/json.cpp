#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace earl::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest decimal that parses back to exactly `v` (so recorded doubles —
  // e.g. max_deviation in the event log — survive an offline read bit-exact).
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc() ? std::string(buf, end) : "0";
}

void JsonObject::begin_field(std::string_view key) {
  if (!first_) out_.push_back(',');
  first_ = false;
  out_.push_back('"');
  out_.append(key);
  out_ += "\":";
}

JsonObject& JsonObject::field(std::string_view key, std::string_view value) {
  begin_field(key);
  out_.push_back('"');
  out_ += json_escape(value);
  out_.push_back('"');
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, std::uint64_t value) {
  begin_field(key);
  out_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, double value) {
  begin_field(key);
  out_ += json_number(value);
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, bool value) {
  begin_field(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::raw_field(std::string_view key, std::string_view raw) {
  begin_field(key);
  out_.append(raw);
  return *this;
}

std::string JsonObject::str() && {
  out_.push_back('}');
  return std::move(out_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

/// Recursive-descent reader over one contiguous buffer.  Depth is bounded
/// so a hostile document ("[[[[...") cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue value;
    if (!parse_value(&value, 0)) {
      if (error != nullptr) {
        *error = "offset " + std::to_string(pos_) + ": " + message_;
      }
      return std::nullopt;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "offset " + std::to_string(pos_) +
                 ": trailing garbage after document";
      }
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* message) {
    if (message_.empty()) message_ = message;
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected, const char* message) {
    if (pos_ >= text_.size() || text_[pos_] != expected) {
      return fail(message);
    }
    ++pos_;
    return true;
  }

  bool parse_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_hex4(std::uint32_t* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void append_utf8(std::uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string* out) {
    if (!consume('"', "expected string")) return false;
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(&cp)) return false;
          // Surrogate pair: a high surrogate must be followed by \uDC00..
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (text_.substr(pos_, 2) != "\\u") {
              return fail("unpaired high surrogate");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          append_utf8(cp, out);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  bool parse_number(double* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // Integer part: a single 0, or [1-9][0-9]*.  Leading zeros are invalid.
    if (pos_ >= text_.size()) return fail("truncated number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    } else {
      return fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), *out);
    if (ec != std::errc() || end != token.data() + token.size()) {
      return fail("unparseable number");
    }
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        out->kind = JsonValue::Kind::kObject;
        skip_whitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_whitespace();
          std::string key;
          if (!parse_string(&key)) return fail("expected object key");
          skip_whitespace();
          if (!consume(':', "expected ':' after object key")) return false;
          JsonValue value;
          if (!parse_value(&value, depth + 1)) return false;
          out->object.emplace_back(std::move(key), std::move(value));
          skip_whitespace();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            skip_whitespace();
            if (pos_ < text_.size() && text_[pos_] == '}') {
              return fail("trailing comma in object");
            }
            continue;
          }
          return consume('}', "expected ',' or '}' in object");
        }
      }
      case '[': {
        ++pos_;
        out->kind = JsonValue::Kind::kArray;
        skip_whitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue value;
          if (!parse_value(&value, depth + 1)) return false;
          out->array.push_back(std::move(value));
          skip_whitespace();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            skip_whitespace();
            if (pos_ < text_.size() && text_[pos_] == ']') {
              return fail("trailing comma in array");
            }
            continue;
          }
          return consume(']', "expected ',' or ']' in array");
        }
      }
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return parse_literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return parse_literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return parse_literal("null");
      default:
        out->kind = JsonValue::Kind::kNumber;
        return parse_number(&out->number);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  return JsonParser(text).parse(error);
}

}  // namespace earl::obs
