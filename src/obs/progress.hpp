// Live campaign progress: completed/total, throughput, ETA, outcome tallies.
//
// Prints a single self-overwriting line (carriage return, no newline until
// the campaign ends), throttled to a minimum interval so a thousand fast
// experiments per second cost one atomic compare-exchange each, not a
// formatted write.  All counters are atomics; any worker may tick.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "obs/observer.hpp"

namespace earl::obs {

/// A point-in-time view of campaign progress, decoupled from the atomics so
/// line rendering and ETA math are pure (and testable) functions of it.
struct ProgressSnapshot {
  std::size_t done = 0;
  std::size_t total = 0;
  /// Active campaign time: wall time minus any control-plane paused time,
  /// so rate and ETA describe the campaign's real throughput.
  double elapsed_s = 0.0;
  /// Wall time spent paused by the control plane (0 without a controller).
  double paused_s = 0.0;
  std::uint64_t detected = 0;
  std::uint64_t severe = 0;
  std::uint64_t minor = 0;
  std::uint64_t benign = 0;
};

/// Observed throughput in experiments per second; 0 before any time passed.
double progress_rate(std::size_t done, double elapsed_s);

/// Remaining work over the observed rate; 0 when the rate is still 0 (no
/// guess is better than a wild one) or when the campaign is done.
double progress_eta_seconds(std::size_t done, std::size_t total,
                            double elapsed_s);

/// The progress line exactly as ProgressReporter prints it, including the
/// leading '\r' / trailing '\n' dictated by `carriage_return`/`final_line`.
std::string render_progress_line(const ProgressSnapshot& snapshot,
                                 bool final_line, bool carriage_return);

/// The snapshot as a one-line JSON object: done/total/percent, elapsed_s,
/// rate, eta_s, and the outcome tallies.  Rate and ETA reuse the guarded
/// helpers above and percent guards total == 0, so the zero-elapsed /
/// zero-completed first tick can never leak `inf`/`nan` into the JSON.
std::string render_progress_json(const ProgressSnapshot& snapshot);

class ProgressReporter final : public CampaignObserver {
 public:
  struct Options {
    /// Null sink disables printing entirely: the reporter then only keeps
    /// counters, which snapshot() exposes (obs::TelemetryServer mode).
    std::FILE* sink = stderr;
    std::chrono::milliseconds min_interval{200};
    bool carriage_return = true;  // false = one line per update (plain logs)
  };

  ProgressReporter();
  explicit ProgressReporter(Options options);

  void on_campaign_start(const fi::CampaignConfig& config,
                         const CampaignStartInfo& info) override;
  void on_experiment_done(std::size_t worker,
                          const fi::ExperimentResult& result,
                          std::uint64_t wall_ns) override;
  /// Control-plane extend: the denominator (and ETA) follow the new total.
  void on_campaign_extended(std::size_t worker,
                            std::size_t new_total) override;
  void on_campaign_end(const fi::CampaignResult& result) override;

  /// Wires in a cumulative paused-time source (nanoseconds; typically
  /// fi::CampaignController::paused_ns).  snapshot() subtracts it from
  /// elapsed time so the ETA ignores operator pauses.  Set before the
  /// campaign starts; the source must outlive the reporter.
  void set_paused_ns_source(std::function<std::uint64_t()> source) {
    paused_ns_source_ = std::move(source);
  }

  std::size_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// Claims the right to print at `now_ns` (nanoseconds since campaign
  /// start): succeeds when min_interval has passed since the last winning
  /// claim, via one compare-exchange so exactly one racing worker wins each
  /// tick.  Exposed for the throttling tests.
  bool try_claim_print(std::int64_t now_ns);

  /// Current counters as a snapshot (elapsed time supplied by the caller).
  ProgressSnapshot snapshot(double elapsed_s) const;

  /// Thread-safe self-clocked snapshot, callable at any time from any
  /// thread (obs::TelemetryServer's /progress endpoint scrapes it while
  /// workers tick).  All-zero before the campaign starts; elapsed time
  /// freezes at the campaign-end value once the campaign finishes.
  ProgressSnapshot snapshot() const;

 private:
  void print_line(bool final_line);

  Options options_;
  std::atomic<std::size_t> total_{0};
  std::atomic<bool> started_{false};
  std::atomic<std::int64_t> start_ns_{0};  // steady_clock, ns since epoch
  std::atomic<std::int64_t> end_ns_{0};    // 0 while the campaign runs
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::int64_t> last_print_ns_{0};
  std::array<std::atomic<std::uint64_t>, analysis::kOutcomeCount> tallies_{};
  std::function<std::uint64_t()> paused_ns_source_;  // null = never paused
};

}  // namespace earl::obs
