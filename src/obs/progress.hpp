// Live campaign progress: completed/total, throughput, ETA, outcome tallies.
//
// Prints a single self-overwriting line (carriage return, no newline until
// the campaign ends), throttled to a minimum interval so a thousand fast
// experiments per second cost one atomic compare-exchange each, not a
// formatted write.  All counters are atomics; any worker may tick.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "obs/observer.hpp"

namespace earl::obs {

class ProgressReporter final : public CampaignObserver {
 public:
  struct Options {
    std::FILE* sink = stderr;
    std::chrono::milliseconds min_interval{200};
    bool carriage_return = true;  // false = one line per update (plain logs)
  };

  ProgressReporter();
  explicit ProgressReporter(Options options);

  void on_campaign_start(const fi::CampaignConfig& config,
                         const CampaignStartInfo& info) override;
  void on_experiment_done(std::size_t worker,
                          const fi::ExperimentResult& result,
                          std::uint64_t wall_ns) override;
  void on_campaign_end(const fi::CampaignResult& result) override;

  std::size_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  void print_line(bool final_line);

  Options options_;
  std::size_t total_ = 0;
  std::chrono::steady_clock::time_point start_{};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::int64_t> last_print_ns_{0};
  std::array<std::atomic<std::uint64_t>, analysis::kOutcomeCount> tallies_{};
};

}  // namespace earl::obs
