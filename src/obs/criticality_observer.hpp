// Live fault-criticality observer.
//
// Streams every completed experiment into an `analysis::CriticalityIndex`
// under a mutex (the DatabaseObserver threading pattern) and, when a
// metrics registry is attached, keeps the per-element Prometheus series
// current: `earl_experiments_by_class{class=...,element=...}` counters and
// `earl_criticality_score{element=...}` gauges.  Strictly passive — the
// per-experiment work is one lock, a handful of integer adds, and (for the
// registry path) cached lock-free instrument updates, so campaigns stay
// bit-identical with the observer attached (bench_criticality_overhead
// proves it against a checked-in baseline).
//
// The snapshot accessors serialize through the same `CriticalityIndex`
// serializers the offline `earl-trace --criticality-report` uses, which is
// what lets CI diff the live `/criticality` body against the offline
// report verbatim.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "analysis/criticality.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"

namespace earl::obs {

class CriticalityObserver final : public CampaignObserver {
 public:
  struct Options {
    analysis::CriticalityConfig criticality;
    /// Flat-bit → element mapping; defaults to the SCIFI scan chain.
    analysis::BitResolver resolver;
  };

  explicit CriticalityObserver(Options options = {},
                               MetricsRegistry* registry = nullptr);

  void on_campaign_start(const fi::CampaignConfig& config,
                         const CampaignStartInfo& info) override;
  void on_golden_done(const fi::GoldenRun& golden) override;
  void on_experiment_done(std::size_t worker,
                          const fi::ExperimentResult& result,
                          std::uint64_t wall_ns) override;

  /// The `/criticality` body: ranked top-k report (CriticalityIndex::
  /// to_json under the lock).
  std::string report_json(std::size_t top_k) const;
  /// Bit/time-bucket detail for `?element=`; empty when unknown.
  std::string element_json(std::string_view element) const;
  /// Compact one-line digest for the SSE `criticality_updated` event.
  std::string digest_json(std::size_t top_k = 5) const;

  /// Weighted experiments folded in so far.
  std::uint64_t experiments_seen() const;

  /// Deep copy of the index for tests and offline comparison.
  analysis::CriticalityIndex snapshot() const;

 private:
  struct ElementSeries {
    std::array<Counter*, analysis::kCriticalityClassCount> classes{};
    Gauge* score = nullptr;
  };

  Options options_;
  MetricsRegistry* registry_;
  mutable std::mutex mutex_;
  analysis::CriticalityIndex index_;
  std::unordered_map<std::string, ElementSeries> series_;
};

}  // namespace earl::obs
