#include "obs/collector.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "obs/labels.hpp"
#include "tvm/isa.hpp"
#include "util/table.hpp"

namespace earl::obs {

namespace {

std::span<const double> wall_us_bounds() {
  static constexpr double kBounds[] = {10,    20,    50,     100,   200,
                                       500,   1000,  2000,   5000,  10000,
                                       20000, 50000, 100000, 200000, 500000};
  return kBounds;
}

std::span<const double> end_iteration_bounds() {
  static constexpr double kBounds[] = {0,   1,   2,   5,   10,  20, 50,
                                       100, 200, 325, 500, 650};
  return kBounds;
}

}  // namespace

MetricsCollector::MetricsCollector(MetricsRegistry& registry)
    : registry_(registry) {
  // Help text for the Prometheus exposition (see docs/OBSERVABILITY.md for
  // the full catalog; families share one line via their common prefix).
  registry_.set_help("campaign.detection_latency",
                     "Injection-to-detection distance in dynamic time units");
  registry_.set_help("campaign.experiment_wall_us",
                     "Host wall-clock time per experiment in microseconds");
  registry_.set_help("campaign.end_iteration",
                     "Iteration at which each experiment stopped");
  registry_.set_help("campaign.experiments",
                     "Configured experiment count for this campaign");
  registry_.set_help("campaign.iterations",
                     "Closed-loop iterations per experiment");
  registry_.set_help("campaign.seed", "Campaign sampling seed");
  registry_.set_help("campaign.workers", "Resolved worker thread count");
  registry_.set_help("campaign.fault_space_bits",
                     "Scan-chain fault-location space size in bits");
  registry_.set_help("campaign.register_partition_bits",
                     "Boundary below which locations are register bits");
  registry_.set_help("campaign.golden.total_time",
                     "Golden-run total time units (the time-sampling space)");
  registry_.set_help("campaign.golden.max_iteration_time",
                     "Longest golden iteration in time units (watchdog base)");
  registry_.set_help("tvm.instret",
                     "Simulated instructions retired across all workers");
  registry_.set_help("tvm.cache.hits", "Data-cache hits across all workers");
  registry_.set_help("tvm.cache.misses",
                     "Data-cache misses across all workers");
  registry_.set_help("tvm.cache.writebacks",
                     "Dirty data-cache lines written back across all workers");
  for (std::size_t o = 0; o < analysis::kOutcomeCount; ++o) {
    const auto outcome = static_cast<analysis::Outcome>(o);
    registry_.set_help("campaign.outcome." + outcome_slug(outcome),
                       "Experiments classified " +
                           std::string(analysis::outcome_name(outcome)));
  }
  for (std::size_t e = 1; e < tvm::kEdmCount; ++e) {
    const auto edm = static_cast<tvm::Edm>(e);
    const std::string name(tvm::edm_name(edm));
    registry_.set_help("campaign.edm." + edm_slug(edm),
                       "Detections attributed to " + name);
    registry_.set_help("campaign.detection_latency." + edm_slug(edm),
                       "Injection-to-detection distance via " + name);
    registry_.set_help("tvm.edm_raised." + edm_slug(edm),
                       "Raw " + name + " triggers inside the TVM");
  }
  for (std::size_t o = 0; o < analysis::kOutcomeCount; ++o) {
    outcome_counters_[o] = &registry_.counter(
        "campaign.outcome." + outcome_slug(static_cast<analysis::Outcome>(o)));
  }
  for (std::size_t e = 1; e < tvm::kEdmCount; ++e) {
    const std::string slug = edm_slug(static_cast<tvm::Edm>(e));
    edm_counters_[e] = &registry_.counter("campaign.edm." + slug);
    latency_histograms_[e] = &registry_.histogram(
        "campaign.detection_latency." + slug, detection_latency_bounds());
  }
  latency_all_ = &registry_.histogram("campaign.detection_latency",
                                      detection_latency_bounds());
  wall_us_ = &registry_.histogram("campaign.experiment_wall_us",
                                  wall_us_bounds());
  end_iteration_ = &registry_.histogram("campaign.end_iteration",
                                        end_iteration_bounds());
}

void MetricsCollector::on_campaign_start(const fi::CampaignConfig& config,
                                         const CampaignStartInfo& info) {
  registry_.gauge("campaign.experiments")
      .set(static_cast<double>(config.experiments));
  registry_.gauge("campaign.iterations")
      .set(static_cast<double>(config.iterations));
  registry_.gauge("campaign.seed").set(static_cast<double>(config.seed));
  registry_.gauge("campaign.workers").set(static_cast<double>(info.workers));
  registry_.gauge("campaign.fault_space_bits")
      .set(static_cast<double>(info.fault_space_bits));
  registry_.gauge("campaign.register_partition_bits")
      .set(static_cast<double>(info.register_partition_bits));
}

void MetricsCollector::on_golden_done(const fi::GoldenRun& golden) {
  registry_.gauge("campaign.golden.total_time")
      .set(static_cast<double>(golden.total_time));
  registry_.gauge("campaign.golden.max_iteration_time")
      .set(static_cast<double>(golden.max_iteration_time));
}

void MetricsCollector::on_experiment_done(std::size_t worker,
                                          const fi::ExperimentResult& result,
                                          std::uint64_t wall_ns) {
  (void)worker;
  outcome_counters_[static_cast<std::size_t>(result.outcome)]->add();
  wall_us_->observe(static_cast<double>(wall_ns) / 1000.0);
  end_iteration_->observe(static_cast<double>(result.end_iteration));
  if (result.outcome == analysis::Outcome::kDetected) {
    const auto e = static_cast<std::size_t>(result.edm);
    const double distance = static_cast<double>(result.detection_distance);
    latency_all_->observe(distance);
    if (e > 0 && e < tvm::kEdmCount) {
      edm_counters_[e]->add();
      latency_histograms_[e]->observe(distance);
    }
  }
}

void MetricsCollector::on_worker_profile(std::size_t worker,
                                         const TargetProfile& profile) {
  (void)worker;
  const std::lock_guard<std::mutex> lock(profile_mutex_);
  merged_profile_.merge(profile);
}

void MetricsCollector::on_campaign_end(const fi::CampaignResult& result) {
  (void)result;
  const std::lock_guard<std::mutex> lock(profile_mutex_);
  if (merged_profile_.empty()) return;
  for (std::size_t op = 0; op < kOpcodeSlots; ++op) {
    const std::uint64_t n = merged_profile_.instret_by_opcode[op];
    if (n == 0) continue;
    const tvm::OpcodeInfo& info =
        tvm::opcode_info(static_cast<std::uint8_t>(op));
    const std::string name =
        info.valid ? info.mnemonic : "op" + std::to_string(op);
    registry_.counter("tvm.instret." + name).add(n);
  }
  registry_.counter("tvm.instret").add(merged_profile_.instret_total());
  registry_.counter("tvm.cache.hits").add(merged_profile_.cache_hits);
  registry_.counter("tvm.cache.misses").add(merged_profile_.cache_misses);
  registry_.counter("tvm.cache.writebacks")
      .add(merged_profile_.cache_writebacks);
  for (std::size_t e = 1; e < tvm::kEdmCount; ++e) {
    const std::uint64_t n = merged_profile_.edm_raised[e];
    if (n == 0) continue;
    registry_
        .counter("tvm.edm_raised." + edm_slug(static_cast<tvm::Edm>(e)))
        .add(n);
  }
}

std::string render_detection_latency_table(const fi::CampaignResult& result) {
  // Gather injection->detection distances per mechanism.
  std::array<std::vector<std::uint64_t>, tvm::kEdmCount> distances;
  std::vector<std::uint64_t> all;
  for (const fi::ExperimentResult& e : result.experiments) {
    if (e.outcome != analysis::Outcome::kDetected) continue;
    distances[static_cast<std::size_t>(e.edm)].push_back(
        e.detection_distance);
    all.push_back(e.detection_distance);
  }

  util::Table table({"Mechanism", "N", "min", "p50", "p90", "max",
                     "<=10", "<=100", "<=1k", ">1k"});
  for (std::size_t c = 1; c < 10; ++c) {
    table.set_align(c, util::Table::Align::kRight);
  }

  auto add_row = [&](const std::string& name,
                     std::vector<std::uint64_t> xs) {
    std::sort(xs.begin(), xs.end());
    auto percentile = [&](double p) {
      const std::size_t index = static_cast<std::size_t>(
          p * static_cast<double>(xs.size() - 1) + 0.5);
      return xs[std::min(index, xs.size() - 1)];
    };
    std::size_t le10 = 0, le100 = 0, le1k = 0;
    for (const std::uint64_t x : xs) {
      le10 += x <= 10;
      le100 += x <= 100;
      le1k += x <= 1000;
    }
    table.add_row({name, std::to_string(xs.size()), std::to_string(xs.front()),
                   std::to_string(percentile(0.5)),
                   std::to_string(percentile(0.9)), std::to_string(xs.back()),
                   std::to_string(le10), std::to_string(le100),
                   std::to_string(le1k), std::to_string(xs.size() - le1k)});
  };

  for (std::size_t e = 1; e < tvm::kEdmCount; ++e) {
    if (distances[e].empty()) continue;
    add_row(std::string(tvm::edm_name(static_cast<tvm::Edm>(e))),
            std::move(distances[e]));
  }
  if (!all.empty()) {
    table.add_separator();
    add_row("Total", std::move(all));
  } else {
    table.add_row({"(no detections)", "0", "-", "-", "-", "-", "-", "-", "-",
                   "-"});
  }
  return table.render();
}

}  // namespace earl::obs
