#include "obs/profile.hpp"

namespace earl::obs {

std::uint64_t TargetProfile::instret_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : instret_by_opcode) total += n;
  return total;
}

void TargetProfile::merge(const TargetProfile& other) {
  for (std::size_t i = 0; i < kOpcodeSlots; ++i) {
    instret_by_opcode[i] += other.instret_by_opcode[i];
  }
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_writebacks += other.cache_writebacks;
  for (std::size_t i = 0; i < tvm::kEdmCount; ++i) {
    edm_raised[i] += other.edm_raised[i];
  }
}

bool TargetProfile::empty() const {
  if (cache_hits || cache_misses || cache_writebacks) return false;
  for (const std::uint64_t n : instret_by_opcode) {
    if (n) return false;
  }
  for (const std::uint64_t n : edm_raised) {
    if (n) return false;
  }
  return true;
}

}  // namespace earl::obs
