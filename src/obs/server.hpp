// Live campaign telemetry server (the DETOx/OpenSEA "watch the campaign"
// role): one more passive CampaignObserver that serves the campaign's
// state over HTTP while it runs.
//
// The canonical surface lives under /api/v1/... — every endpoint below is
// reachable as /api/v1/<name>, every 4xx/5xx answers with the uniform JSON
// error envelope {"error","detail","status"}, and GET /api/v1/version
// publishes the API/shard protocol versions plus a capability list (the
// coordinator<->worker handshake document).  The bare legacy paths
// (/metrics, /progress, ...) remain as byte-identical aliases that add a
// `Deprecation: true` header and a `Link: </api/v1/...>;
// rel="successor-version"` pointer; /api/v1/version and /api/v1/shard/*
// are v1-only (404 on the legacy root).
//
// Endpoints:
//   GET /metrics   Prometheus text exposition — the attached
//                  MetricsRegistry's live snapshot plus the server's own
//                  earl_serve_* series (per-worker watchdog gauges, HTTP
//                  and SSE counters)
//   GET /progress  JSON ProgressSnapshot: completed/total, rate, ETA,
//                  per-outcome tallies
//   GET /healthz   200 while workers are making progress, 503 when the
//                  stall watchdog trips (a worker silent for stall_factor
//                  times the longest experiment wall time observed so far,
//                  seeded by the golden run's wall time)
//   GET /events    Server-Sent Events stream of lifecycle events, fed from
//                  a bounded ring buffer with a drop counter — a slow or
//                  stuck consumer loses events, never stalls workers
//   GET /spans     Chrome trace_event JSON of the attached SpanTracer's
//                  retained span window (only when a tracer is attached
//                  via set_tracer; 404 otherwise) — load in Perfetto live,
//                  mid-campaign
//   GET /criticality  JSON fault-criticality ranking from the attached
//                  CriticalityObserver (set_criticality; 404 otherwise):
//                  ranked elements with per-class weighted rates, bit-level
//                  detail via ?element=NAME, top-k via ?top=K — the same
//                  document `earl-trace --criticality-report` prints
//
// Control plane (only when a fi::CampaignController is attached via
// set_controller, POST-only, optionally bearer-token guarded):
//   POST /control/pause    park workers at the next claim point
//   POST /control/resume   wake parked workers
//   POST /control/stop     graceful drain (same as SIGINT)
//   POST /control/extend?n=M   grow the campaign by M experiments
//   POST /control/workers?n=K  soft-cap active workers to K
//
// Passivity contract: every observer callback is O(a few atomic ops plus
// one short uncontended mutex); no callback ever blocks on a socket.  The
// GET side only *reads* shared state; mutating commands exist solely under
// POST /control/ and are explicit operator actions.  Campaign outcomes
// with the server attached (and no control commands issued) are
// bit-identical to the same seed without it (tests/obs/http_test.cpp:
// ServeDoesNotPerturbCampaign); a paused-and-resumed campaign is
// bit-identical to an uninterrupted one.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "fi/controller.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"

namespace earl::fi {
class CampaignCoordinator;
}  // namespace earl::fi

namespace earl::obs {

class CriticalityObserver;

/// Worker-liveness watchdog.  A worker is *stalled* when it has been
/// silent (no on_experiment_done) for longer than
/// max(min_threshold, stall_factor * longest experiment wall time seen),
/// where the golden run's wall time seeds the longest-experiment estimate
/// (experiments never run longer than a full golden-length execution, so
/// it is a sound upper bound before any experiment completes).
///
/// All methods take explicit `now_ns` timestamps (any monotonic clock), so
/// tests drive the watchdog deterministically.  Thread-safe.
class WorkerWatchdog {
 public:
  struct Options {
    double stall_factor = 10.0;
    /// Floor on the stall threshold: sub-millisecond experiments must not
    /// let scheduler jitter read as a stall.
    std::int64_t min_threshold_ns = 2'000'000'000;
  };

  WorkerWatchdog() : WorkerWatchdog(Options{}) {}
  explicit WorkerWatchdog(Options options) : options_(options) {}

  /// Arms the watchdog: every worker's "last done" starts at `now_ns`.
  void start(std::size_t workers, std::int64_t now_ns);
  /// Seeds the longest-experiment estimate (golden-run wall time).
  void set_baseline(std::uint64_t wall_ns);
  void note_done(std::size_t worker, std::uint64_t wall_ns,
                 std::int64_t now_ns);
  /// Resets every worker's "last done" to `now_ns` — called when a paused
  /// campaign resumes, so the pause itself never reads as a stall.
  void touch_all(std::int64_t now_ns);
  /// Campaign drained; the watchdog disarms and reports healthy forever.
  void finish();

  bool active() const;
  std::size_t workers() const;
  std::int64_t stall_threshold_ns() const;
  std::vector<std::size_t> stalled(std::int64_t now_ns) const;
  bool healthy(std::int64_t now_ns) const { return stalled(now_ns).empty(); }
  /// The worker's last completion timestamp (the start() time before its
  /// first); 0 for out-of-range workers.
  std::int64_t last_done_ns(std::size_t worker) const;

 private:
  std::int64_t threshold_locked() const;

  mutable std::mutex mutex_;
  Options options_;
  bool active_ = false;
  std::uint64_t max_wall_ns_ = 0;
  std::vector<std::int64_t> last_done_;
};

/// One lifecycle event as stored in the SSE ring buffer: a small POD so
/// the worker-side push is a struct copy under a short mutex, and all JSON
/// formatting happens on the consumer's thread.
struct ServerEvent {
  enum class Type : std::uint8_t {
    kCampaignStart,
    kGoldenDone,
    kExperiment,
    kControl,      // a control command was accepted over HTTP
    kExtended,     // the runner applied an extension (new experiment total)
    kCampaignEnd,
    kCriticality,  // periodic criticality digest marker; the SSE writer
                   // renders the live digest at consume time
  };
  Type type = Type::kExperiment;
  std::uint64_t seq = 0;  // assigned by EventRing::push
  // kExperiment:
  std::uint64_t id = 0;
  std::uint32_t worker = 0;  // also: the applying worker for kExtended
  analysis::Outcome outcome = analysis::Outcome::kOverwritten;
  tvm::Edm edm = tvm::Edm::kNone;
  std::uint64_t end_iteration = 0;
  std::uint64_t wall_ns = 0;
  // kCampaignStart: {experiments, workers}; kGoldenDone: {total_time,
  // max_iteration_time}; kControl: {command enum, value}; kExtended:
  // {new_total, -}; kCampaignEnd: {completed, interrupted};
  // kCriticality: {experiments aggregated, -}.
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

/// Bounded multi-consumer event ring.  Producers never block: when the
/// ring is full the oldest event is evicted (counted), and each consumer
/// learns via poll() how many events it personally missed.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity);

  /// Appends (evicting the oldest entry when full) and wakes consumers.
  /// Returns the event's sequence number.
  std::uint64_t push(ServerEvent event);

  struct Poll {
    std::vector<ServerEvent> events;
    std::uint64_t dropped = 0;  // events this consumer missed
    bool closed = false;
  };
  /// Waits up to `timeout` for events with seq >= *cursor, returns them
  /// and advances the cursor.  A lagging cursor is snapped forward to the
  /// oldest retained event, with the gap reported as `dropped`.
  Poll poll(std::uint64_t* cursor, std::chrono::milliseconds timeout);

  /// Sequence number of the oldest retained event (== next unseen seq for
  /// a consumer that wants available history).
  std::uint64_t oldest_seq() const;
  /// Total events evicted before at least the slowest possible consumer
  /// could have read them (monotonic).
  std::uint64_t evicted() const;
  /// Wakes all consumers and makes every later poll() return closed.
  void close();

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<ServerEvent> ring_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t evicted_ = 0;
  bool closed_ = false;
};

class TelemetryServer final : public CampaignObserver {
 public:
  struct Options {
    std::string address = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = kernel-assigned (tests)
    std::size_t handler_threads = 4;
    std::size_t event_capacity = 1024;
    /// Per-request byte cap forwarded to the HTTP layer.  Coordinators
    /// raise it so POST /api/v1/shard/result can carry a full shard's
    /// ResultDatabase CSV.
    std::size_t max_request_bytes = 8192;
    WorkerWatchdog::Options watchdog;
    /// Monotonic clock, injectable for deterministic watchdog tests.
    std::function<std::int64_t()> now_ns;  // default: steady_clock
    /// When non-empty, POST /control/* requires
    /// "Authorization: Bearer <token>" (401 otherwise).  GET endpoints are
    /// never authenticated — they stay read-only.
    std::string bearer_token;
    /// Idle `/events` streams emit a `: heartbeat` comment at this cadence
    /// so proxies and load balancers do not time the stream out.
    /// Effective resolution is the SSE poll tick (250 ms).
    std::chrono::milliseconds heartbeat_interval{15000};
    /// Push an SSE `criticality_updated` digest every N completed
    /// experiments (plus one at campaign end) when a CriticalityObserver
    /// is attached; 0 disables the digest events.
    std::size_t criticality_digest_every = 100;
  };

  explicit TelemetryServer(Options options,
                           const MetricsRegistry* registry = nullptr);
  ~TelemetryServer() override;

  /// Binds and starts serving (callable before the campaign, so a bad
  /// address or occupied port fails fast).  False + message on failure.
  bool start(std::string* error);
  void stop();

  std::uint16_t port() const { return http_.port(); }
  std::string url() const { return http_.url(); }

  WorkerWatchdog& watchdog() { return watchdog_; }
  std::uint64_t http_requests() const {
    return http_requests_.load(std::memory_order_relaxed);
  }

  /// Request-handling latency (exported as `earl_http_request_ns` on
  /// /metrics).  SSE /events streams are excluded: they live as long as
  /// the subscriber, which would swamp the per-request buckets.
  const Histogram& http_request_ns() const { return http_request_ns_; }

  /// Attaches the campaign control mailbox, enabling POST /control/*.
  /// The controller must outlive the server; attach before start() (the
  /// handler threads read the pointer).  Null detaches: control endpoints
  /// then answer 503.  Also wires the progress reporter's pause-aware
  /// clock so /progress ETAs exclude paused wall time.
  void set_controller(fi::CampaignController* controller);

  /// Attaches a campaign coordinator, enabling the POST /api/v1/shard/*
  /// lease/heartbeat/result RPCs (bearer-guarded like /control/*) and
  /// switching /progress, /criticality and the coordinator block of
  /// /metrics to fleet-wide aggregates.  The coordinator must outlive the
  /// server; attach before start().  Null detaches (shard endpoints then
  /// answer 503).
  void set_coordinator(fi::CampaignCoordinator* coordinator);

  /// Attaches a criticality observer: GET /criticality serves its ranked
  /// report, and completed experiments emit periodic `criticality_updated`
  /// SSE digests.  The observer must outlive the server; attach before
  /// start().  Null detaches (/criticality answers 404).
  void set_criticality(CriticalityObserver* criticality);

  /// Attaches a span tracer: GET /spans serves its retained window as
  /// Chrome trace_event JSON, and every non-SSE request emits a
  /// kHttpRequest span onto the tracer's "http" track (multi-writer safe —
  /// handler threads share it).  The tracer must outlive the server;
  /// attach before start().  Null detaches (/spans answers 404).
  void set_tracer(SpanTracer* tracer);

  // CampaignObserver — all passive.
  void on_campaign_start(const fi::CampaignConfig& config,
                         const CampaignStartInfo& info) override;
  void on_golden_done(const fi::GoldenRun& golden) override;
  void on_experiment_done(std::size_t worker,
                          const fi::ExperimentResult& result,
                          std::uint64_t wall_ns) override;
  void on_campaign_extended(std::size_t worker,
                            std::size_t new_total) override;
  void on_campaign_end(const fi::CampaignResult& result) override;

 private:
  enum class CampaignState : std::uint8_t { kIdle, kRunning, kDone };

  std::int64_t now() const;
  std::string_view state_slug() const;
  void handle(const HttpRequest& request, HttpConnection& connection);
  HttpResponse metrics_response();
  HttpResponse progress_response();
  HttpResponse healthz_response();
  HttpResponse spans_response();
  HttpResponse criticality_response(const HttpRequest& request);
  HttpResponse index_response();
  HttpResponse version_response();
  HttpResponse control_response(const HttpRequest& request);
  HttpResponse control_status(fi::ControlCommand command);
  HttpResponse shard_response(const HttpRequest& request,
                              const std::string& path);
  /// Constant-time bearer check shared by every mutating endpoint
  /// (/control/* and /api/v1/shard/*); always true with no token set.
  bool authorized(const HttpRequest& request) const;
  /// Watchdog stalls filtered through the control plane: none while
  /// paused, and workers parked above the worker cap are not stalls.
  std::vector<std::size_t> current_stalled(std::int64_t now_ns) const;
  void serve_events(HttpConnection& connection, bool legacy);
  std::string serve_metrics_text();
  std::string campaign_name() const;

  Options options_;
  const MetricsRegistry* registry_;
  HttpServer http_;
  WorkerWatchdog watchdog_;
  EventRing ring_;
  ProgressReporter reporter_;  // null sink: counters only, never prints
  fi::CampaignController* controller_ = nullptr;
  fi::CampaignCoordinator* coordinator_ = nullptr;
  SpanTracer* tracer_ = nullptr;
  SpanTrack* http_track_ = nullptr;
  CriticalityObserver* criticality_ = nullptr;
  std::atomic<std::uint64_t> criticality_seen_{0};

  mutable std::mutex state_mutex_;  // guards name_
  std::string name_;
  std::atomic<CampaignState> state_{CampaignState::kIdle};
  std::atomic<std::size_t> campaign_workers_{0};
  std::atomic<std::int64_t> campaign_start_ns_{0};
  std::atomic<std::uint64_t> http_requests_{0};
  std::atomic<std::int64_t> sse_clients_{0};
  Histogram http_request_ns_{latency_ns_bounds()};
};

/// Renders one ServerEvent as an SSE frame ("event: ...\ndata: {...}\n\n");
/// exposed for tests.
std::string render_sse_event(const ServerEvent& event,
                             std::string_view campaign);

}  // namespace earl::obs
