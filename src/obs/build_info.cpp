#include "obs/build_info.hpp"

// Configure-time values; src/CMakeLists.txt defines these for this
// translation unit only, so a new git revision recompiles one file.
#ifndef EARL_GIT_DESCRIBE
#define EARL_GIT_DESCRIBE "unknown"
#endif
#ifndef EARL_BUILD_TYPE
#define EARL_BUILD_TYPE "unknown"
#endif
#ifndef EARL_CXX_FLAGS
#define EARL_CXX_FLAGS ""
#endif

namespace earl::obs {

namespace {

std::string compiler_string() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& current_build_info() {
  static const BuildInfo info = {EARL_GIT_DESCRIBE, compiler_string(),
                                 EARL_BUILD_TYPE, EARL_CXX_FLAGS};
  return info;
}

void register_build_info(MetricsRegistry& registry) {
  const BuildInfo& info = current_build_info();
  registry.set_help("earl.build_info",
                    "Toolchain that produced this binary; the value is "
                    "always 1.");
  registry.set_info("earl.build_info", {{"git", info.git},
                                        {"compiler", info.compiler},
                                        {"build_type", info.build_type},
                                        {"flags", info.flags}});
}

}  // namespace earl::obs
